"""Tiled SAT storage: per-tile local SATs plus downstream aggregates.

The paper's 2R1W decomposition (after Nehab et al. 2011) splits the
matrix into ``w x w`` blocks, gives each block its *local* SAT, and
carries the cross-block state in three small aggregates — per-column
sums-above, per-row sums-to-the-left, and the corner sums
(:mod:`repro.sat.blockops`, :mod:`repro.sat.triangle2r1w`). This module
keeps exactly that representation *resident* so SAT workloads can be
served, not just computed:

* a **point query** ``F(r, c)`` touches one tile::

      F = local[I,J][i,j] + col_above[I,J][j] + row_left[I,J][i] + corner[I,J]

  so a rectangle sum is at most four corner-tile lookups, ``O(1)`` in
  the matrix size;
* a **point update** dirties one tile's local SAT plus only the
  aggregate suffixes downstream of it — ``O(t^2 + (n/t)^2 + n)`` work
  instead of the ``O(n^2)`` full recompute.

Bit-identity contract
---------------------
Every aggregate is defined as a *sequential* accumulation chain (numpy
``cumsum``), and the incremental re-fold recomputes each dirty chain
suffix **seeded with the stored prefix value** — the identical sequence
of floating-point additions a fresh build performs. An incrementally
updated :class:`Dataset` is therefore bit-identical to one rebuilt from
the updated matrix, for every dtype (verified against ``sat_reference``
in ``tests/service/``). Queries combine four exactly-maintained terms;
on integer-valued data every partial sum is exact, so query results
bit-match the numpy full-recompute oracle as well.

:class:`TiledSATStore` hosts many named :class:`Dataset`\\ s behind a
bounded LRU with byte accounting, because a serving process holds *state*
and must bound it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError, ShapeError, UnknownDataset
from ..obs import runtime as obs

__all__ = ["Dataset", "TileAggregates", "TiledSATStore", "auto_tile_sats"]

#: Default tile side. 64 balances update cost (``O(t^2)``) against
#: aggregate size (``O((n/t)^2)``) around the n=1K-4K serving sweet spot;
#: see the tile-size tradeoff appendix in EXPERIMENTS.md.
DEFAULT_TILE = 64

#: A callable mapping a stacked ``(k, t, t)`` array of tile payloads to
#: their ``(k, t, t)`` local SATs — the pluggable compute backend used by
#: the server to offload initial ingest to a
#: :class:`~repro.sat.batch.BatchSession`. Must be bit-identical to
#: ``np.cumsum(np.cumsum(tile, 0), 1)`` per tile (the HMM algorithms are,
#: per the conformance suite).
TileSATFn = Callable[[np.ndarray], np.ndarray]


def _sat_dtype(dtype: np.dtype) -> np.dtype:
    """The dtype a cumsum-built SAT of this input dtype would have."""
    return np.cumsum(np.zeros(1, dtype=dtype)).dtype


def auto_tile_sats(params=None, *, planner=None) -> TileSATFn:
    """A :data:`TileSATFn` backed by the :mod:`repro.autotune` planner.

    Each tile runs through ``algorithm="auto"`` (kind ``serving-ingest``,
    so ingest latencies pool separately from ad-hoc computes): the
    planner picks the algorithm per tile shape from the cost model and
    refines the choice with the measured per-tile latencies as ingest
    proceeds. Bit-identity to the numpy cumsum is inherited from the
    delegated algorithms (the conformance contract), so the store's
    exactness guarantees are unchanged.
    """
    from ..autotune.auto import AutoSAT

    algorithm = AutoSAT(planner=planner, kind="serving-ingest")

    def tile_sats(tiles: np.ndarray) -> np.ndarray:
        tiles = np.asarray(tiles)
        out = np.empty(tiles.shape, dtype=np.float64)
        for i in range(tiles.shape[0]):
            out[i] = algorithm.compute(tiles[i], params).sat
        return out

    return tile_sats


def _resolve_tile_sats(tile_sats) -> Optional[TileSATFn]:
    """Accept ``"auto"`` anywhere a :data:`TileSATFn` is accepted."""
    if tile_sats == "auto":
        return auto_tile_sats()
    if tile_sats is not None and not callable(tile_sats):
        raise ConfigurationError(
            f"tile_sats must be a callable, 'auto', or None, got {tile_sats!r}"
        )
    return tile_sats


class TileAggregates:
    """One matrix decomposed into ``t x t`` tiles with serving aggregates.

    Arrays (``nb_r x nb_c`` tiles, zero-padded at the ragged edges):

    ``raw``
        ``(nb_r, nb_c, t, t)`` original tile payloads (the update paths
        need the pre-SAT values to re-fold a tile exactly).
    ``local``
        ``(nb_r, nb_c, t, t)`` per-tile local SATs.
    ``col_above``
        ``(nb_r, nb_c, t)``; ``col_above[I, J, j]`` is the sum of all
        elements *above* tile ``(I, J)`` in its global columns
        ``J*t .. J*t+j`` — the exclusive column-chain of tile bottom rows.
    ``row_left``
        ``(nb_r, nb_c, t)``; symmetric, over tile right columns.
    ``tot_col``
        ``(nb_r, nb_c)`` column-chain (inclusive) of tile totals — the
        stored intermediate that lets the corner grid re-fold only its
        dirty quadrant.
    ``corner``
        ``(nb_r + 1, nb_c + 1)`` zero-padded *exclusive* prefix of tile
        totals: ``corner[I, J]`` is the mass strictly above-left of tile
        ``(I, J)``'s origin.
    """

    __slots__ = (
        "rows", "cols", "t", "nb_r", "nb_c", "dtype", "version",
        "raw", "local", "col_above", "row_left", "tot_col", "corner",
    )

    def __init__(self, matrix: np.ndarray, tile: int,
                 tile_sats: Optional[TileSATFn] = None):
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or 0 in matrix.shape:
            raise ShapeError(
                f"dataset matrix must be non-empty and 2-D, got shape {matrix.shape}"
            )
        if tile < 1:
            raise ConfigurationError(f"tile size must be >= 1, got {tile}")
        self.rows, self.cols = matrix.shape
        self.t = int(tile)
        self.nb_r = -(-self.rows // self.t)
        self.nb_c = -(-self.cols // self.t)
        self.dtype = _sat_dtype(matrix.dtype)
        self.version = 0
        t = self.t
        padded = np.zeros((self.nb_r * t, self.nb_c * t), dtype=self.dtype)
        padded[: self.rows, : self.cols] = matrix
        # (nb_r, t, nb_c, t) -> (nb_r, nb_c, t, t), contiguous per tile.
        self.raw = np.ascontiguousarray(
            padded.reshape(self.nb_r, t, self.nb_c, t).transpose(0, 2, 1, 3)
        )
        if tile_sats is None:
            self.local = np.cumsum(np.cumsum(self.raw, axis=2), axis=3)
        else:
            flat = tile_sats(self.raw.reshape(-1, t, t))
            self.local = np.asarray(flat, dtype=self.dtype).reshape(self.raw.shape)
        self.col_above = np.zeros((self.nb_r, self.nb_c, t), dtype=self.dtype)
        self.row_left = np.zeros((self.nb_r, self.nb_c, t), dtype=self.dtype)
        self.tot_col = np.zeros((self.nb_r, self.nb_c), dtype=self.dtype)
        self.corner = np.zeros((self.nb_r + 1, self.nb_c + 1), dtype=self.dtype)
        self._fold_columns(0, 0, self.nb_c - 1)
        self._fold_rows(0, self.nb_r - 1, 0)
        self._fold_corners(0, 0)

    # -- folding (the canonical accumulation chains) -------------------------
    #
    # Each helper recomputes a chain *suffix* seeded with the stored value
    # just before the dirty range, by prepending that value to the cumsum
    # input: cumsum([s, x0, x1, ...]) = [s, s+x0, (s+x0)+x1, ...] — the
    # exact addition sequence a from-scratch build performs, so re-folds
    # are bit-identical to full rebuilds (including -0.0: chains that
    # start at the matrix edge branch to the unseeded canonical form
    # rather than adding a +0.0 seed).

    def _fold_columns(self, i0: int, j0: int, j1: int) -> None:
        """Re-fold ``col_above`` rows ``i0+1..`` for tile columns ``j0..j1``."""
        t = self.t
        bottoms = self.local[:, j0 : j1 + 1, t - 1, :]
        if i0 == 0:
            self.col_above[0, j0 : j1 + 1] = 0
            if self.nb_r > 1:
                self.col_above[1:, j0 : j1 + 1] = np.cumsum(bottoms[:-1], axis=0)
        else:
            seeded = np.concatenate(
                [self.col_above[i0 : i0 + 1, j0 : j1 + 1], bottoms[i0:-1]], axis=0
            )
            self.col_above[i0:, j0 : j1 + 1] = np.cumsum(seeded, axis=0)

    def _fold_rows(self, i0: int, i1: int, j0: int) -> None:
        """Re-fold ``row_left`` columns ``j0+1..`` for tile rows ``i0..i1``."""
        t = self.t
        rights = self.local[i0 : i1 + 1, :, :, t - 1]
        if j0 == 0:
            self.row_left[i0 : i1 + 1, 0] = 0
            if self.nb_c > 1:
                self.row_left[i0 : i1 + 1, 1:] = np.cumsum(rights[:, :-1], axis=1)
        else:
            seeded = np.concatenate(
                [self.row_left[i0 : i1 + 1, j0 : j0 + 1], rights[:, j0:-1]], axis=1
            )
            self.row_left[i0 : i1 + 1, j0:] = np.cumsum(seeded, axis=1)

    def _fold_corners(self, i0: int, j0: int) -> None:
        """Re-fold the corner-aggregate quadrant downstream of tile (i0, j0)."""
        t = self.t
        totals = self.local[:, :, t - 1, t - 1]
        if i0 == 0:
            self.tot_col[:, j0:] = np.cumsum(totals[:, j0:], axis=0)
        else:
            seeded = np.concatenate(
                [self.tot_col[i0 - 1 : i0, j0:], totals[i0:, j0:]], axis=0
            )
            self.tot_col[i0 - 1 :, j0:] = np.cumsum(seeded, axis=0)
        # corner[1:, 1:] is the inclusive row-chain of tot_col; rows >= i0
        # changed, and within them only columns >= j0.
        if j0 == 0:
            self.corner[i0 + 1 :, 1:] = np.cumsum(self.tot_col[i0:, :], axis=1)
        else:
            seeded = np.concatenate(
                [self.corner[i0 + 1 :, j0 : j0 + 1], self.tot_col[i0:, j0:]], axis=1
            )
            self.corner[i0 + 1 :, j0:] = np.cumsum(seeded, axis=1)

    def refold(self, i0: int, j0: int, i1: int, j1: int,
               tile_sats: Optional[TileSATFn] = None) -> None:
        """Recompute dirty tiles' local SATs and downstream aggregates.

        Callers patch ``raw`` for tiles in the inclusive tile-index box
        ``(i0, j0)..(i1, j1)`` first; this re-folds exactly the state that
        depends on them: the box tiles' local SATs, ``col_above`` below
        the box's columns, ``row_left`` right of the box's rows, and the
        corner quadrant — nothing else is touched.
        """
        box = self.raw[i0 : i1 + 1, j0 : j1 + 1]
        if tile_sats is None:
            self.local[i0 : i1 + 1, j0 : j1 + 1] = np.cumsum(
                np.cumsum(box, axis=2), axis=3
            )
        else:
            t = self.t
            flat = tile_sats(box.reshape(-1, t, t))
            self.local[i0 : i1 + 1, j0 : j1 + 1] = np.asarray(
                flat, dtype=self.dtype
            ).reshape(box.shape)
        self._fold_columns(i0, j0, j1)
        self._fold_rows(i0, i1, j0)
        self._fold_corners(i0, j0)
        self.version += 1

    # -- shard extraction (the cluster's unit of placement) ------------------
    #
    # A *shard* is a contiguous range [lo, hi) of row-major linearized tile
    # indices (lin = I * nb_c + J). Everything a point lookup needs for a
    # tile — its local SAT, the two edge-prefix vectors, and the corner
    # scalar — is gathered per tile, so a worker holding a shard answers
    # F(r, c) for any (r, c) inside its tiles without the rest of the grid.

    def shard_state(self, lo: int, hi: int) -> Dict[str, np.ndarray]:
        """Per-tile serving state for linearized tiles ``[lo, hi)``.

        Returns contiguous copies (the payload crosses a process boundary;
        views would pin the whole aggregate arrays in the pickle).
        """
        lins = np.arange(lo, hi, dtype=np.int64)
        i, j = np.divmod(lins, self.nb_c)
        return {
            "lo": int(lo),
            "hi": int(hi),
            "local": np.ascontiguousarray(self.local[i, j]),
            "col": np.ascontiguousarray(self.col_above[i, j]),
            "row": np.ascontiguousarray(self.row_left[i, j]),
            "corner": np.ascontiguousarray(self.corner[i, j]),
        }

    def shard_delta(self, i0: int, j0: int, i1: int, j1: int) -> Dict[str, tuple]:
        """Changed per-tile state after a re-fold of the tile box.

        Returns ``component -> (lins, values)`` covering every tile whose
        serving state *may* have changed when ``refold(i0, j0, i1, j1)``
        ran — the same downstream suffixes the re-fold recomputes: local
        SATs for the box, ``col_above`` below the box's tile columns,
        ``row_left`` right of its tile rows, and the corner quadrant.
        Supersets are safe (values are the current truth); the point is
        that the payload is ``O(update work)``, not ``O(grid)``.
        """

        def grid(ri0, ri1, ci0, ci1, arr):
            i, j = np.meshgrid(
                np.arange(ri0, ri1 + 1), np.arange(ci0, ci1 + 1), indexing="ij"
            )
            i = i.reshape(-1)
            j = j.reshape(-1)
            return (i * self.nb_c + j).astype(np.int64), np.ascontiguousarray(arr[i, j])

        last_r, last_c = self.nb_r - 1, self.nb_c - 1
        return {
            "local": grid(i0, i1, j0, j1, self.local),
            "col": grid(i0, last_r, j0, j1, self.col_above),
            "row": grid(i0, i1, j0, last_c, self.row_left),
            "corner": grid(i0, last_r, j0, last_c, self.corner),
        }

    # -- lookups -------------------------------------------------------------

    def sat_at(self, r: int, c: int):
        """The global SAT value ``F(r, c)`` from one tile's state."""
        t = self.t
        i_tile, i = divmod(r, t)
        j_tile, j = divmod(c, t)
        return (
            self.local[i_tile, j_tile, i, j]
            + self.col_above[i_tile, j_tile, j]
            + self.row_left[i_tile, j_tile, i]
            + self.corner[i_tile, j_tile]
        )

    def sat_at_many(self, rs: np.ndarray, cs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`sat_at`; entries with a negative index are 0.

        The negative-index convention makes rectangle inclusion-exclusion
        (``F(top-1, ...)`` at the matrix edge) branch-free for batches.
        """
        rs = np.asarray(rs, dtype=np.int64)
        cs = np.asarray(cs, dtype=np.int64)
        valid = (rs >= 0) & (cs >= 0)
        r = np.where(valid, rs, 0)
        c = np.where(valid, cs, 0)
        t = self.t
        i_tile, i = np.divmod(r, t)
        j_tile, j = np.divmod(c, t)
        vals = (
            self.local[i_tile, j_tile, i, j]
            + self.col_above[i_tile, j_tile, j]
            + self.row_left[i_tile, j_tile, i]
            + self.corner[i_tile, j_tile]
        )
        return np.where(valid, vals, np.zeros((), dtype=self.dtype))

    def materialize(self) -> np.ndarray:
        """The full SAT (logical shape) assembled from tile state.

        ``O(n^2)`` — for bulk consumers like whole-image filters; the
        query paths never call this.
        """
        full = (
            self.local
            + self.col_above[:, :, None, :]
            + self.row_left[:, :, :, None]
            + self.corner[:-1, :-1, None, None]
        )
        t = self.t
        out = full.transpose(0, 2, 1, 3).reshape(self.nb_r * t, self.nb_c * t)
        return out[: self.rows, : self.cols]

    def matrix(self) -> np.ndarray:
        """The current (updated) source matrix, reassembled from ``raw``."""
        t = self.t
        out = self.raw.transpose(0, 2, 1, 3).reshape(self.nb_r * t, self.nb_c * t)
        return out[: self.rows, : self.cols].copy()

    @property
    def nbytes(self) -> int:
        return (
            self.raw.nbytes + self.local.nbytes + self.col_above.nbytes
            + self.row_left.nbytes + self.tot_col.nbytes + self.corner.nbytes
        )


class Dataset:
    """A named, updatable SAT dataset: value aggregates plus optional
    squared-value aggregates (for O(1) local mean/variance queries).

    Thread-safety: each dataset carries a reentrant lock; the update and
    query entry points in :mod:`repro.service.update` /
    :mod:`repro.service.queries` take it, so a server thread offloading
    ingest can coexist with event-loop queries.
    """

    __slots__ = ("name", "values", "squares", "tile", "lock", "_sat_cache",
                 "update_tile_sats")

    def __init__(self, name: str, matrix: np.ndarray, tile: int = DEFAULT_TILE,
                 *, track_squares: bool = False,
                 tile_sats: Optional[TileSATFn] = None,
                 update_tile_sats: Optional[TileSATFn] = None):
        matrix = np.asarray(matrix)
        self.name = name
        self.tile = int(tile)
        #: Optional backend for *update* re-folds. Ingest-time ``tile_sats``
        #: is deliberately not reused: a server may fan ingest out through a
        #: process pool where a one-tile update roundtrip would cost more
        #: than the numpy re-SAT it replaces. Pass ``update_tile_sats`` to
        #: route the dirty-tile re-SATs of every later update through the
        #: same (bit-identical) backend — the fault-injection suite uses
        #: this to prove updates stay exact under seeded transient faults.
        self.update_tile_sats = _resolve_tile_sats(update_tile_sats)
        self.values = TileAggregates(matrix, tile, _resolve_tile_sats(tile_sats))
        self.squares = (
            TileAggregates(
                np.square(matrix.astype(self.values.dtype, copy=False)), tile
            )
            if track_squares
            else None
        )
        self.lock = threading.RLock()
        self._sat_cache: Optional[Tuple[int, np.ndarray]] = None

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.values.rows, self.values.cols)

    @property
    def version(self) -> int:
        return self.values.version

    @property
    def nbytes(self) -> int:
        total = self.values.nbytes
        if self.squares is not None:
            total += self.squares.nbytes
        if self._sat_cache is not None:
            total += self._sat_cache[1].nbytes
        return total

    def padded_sat(self) -> np.ndarray:
        """The full SAT with a zero guard row/column, cached per version.

        This is the representation :mod:`repro.apps.filters` accepts as a
        precomputed SAT, so repeated whole-image filters on a served
        dataset pay the ``O(n^2)`` materialization once per update epoch,
        not once per call.
        """
        with self.lock:
            if self._sat_cache is None or self._sat_cache[0] != self.version:
                sat = self.values.materialize()
                padded = np.zeros(
                    (sat.shape[0] + 1, sat.shape[1] + 1), dtype=sat.dtype
                )
                padded[1:, 1:] = sat
                self._sat_cache = (self.version, padded)
            return self._sat_cache[1]

    # Convenience forwarding (implementations live in update.py/queries.py).

    def update_point(self, r: int, c: int, *, delta=None, value=None) -> None:
        from .update import point_update

        point_update(self, r, c, delta=delta, value=value)

    def update_region(self, top: int, left: int, values: np.ndarray) -> None:
        from .update import region_update

        region_update(self, top, left, values)

    def add_region(self, top: int, left: int, delta: np.ndarray) -> None:
        from .update import region_add

        region_add(self, top, left, delta)

    def region_sum(self, top: int, left: int, bottom: int, right: int):
        from .queries import region_sum

        return region_sum(self, top, left, bottom, right)


class TiledSATStore:
    """Named datasets behind a bounded LRU with byte accounting.

    ``capacity_bytes`` bounds the *sum* of resident dataset footprints
    (tile payloads + local SATs + aggregates + any cached materialized
    SAT). Admitting a dataset evicts least-recently-used others as
    needed; a dataset bigger than the whole capacity is refused with
    :class:`~repro.errors.ConfigurationError` rather than thrashing the
    store empty. All public methods are thread-safe.
    """

    def __init__(self, capacity_bytes: int = 256 * 1024 * 1024,
                 default_tile: int = DEFAULT_TILE):
        if capacity_bytes < 1:
            raise ConfigurationError(
                f"store capacity must be positive, got {capacity_bytes}"
            )
        self.capacity_bytes = int(capacity_bytes)
        self.default_tile = int(default_tile)
        self._datasets: "OrderedDict[str, Dataset]" = OrderedDict()
        self._lock = threading.RLock()
        self.evictions = 0

    # -- admission / lookup --------------------------------------------------

    def put(self, name: str, matrix: np.ndarray, *, tile: Optional[int] = None,
            track_squares: bool = False,
            tile_sats: Optional[TileSATFn] = None) -> Dataset:
        """Ingest (or replace) a dataset; may evict LRU datasets to fit.

        ``tile_sats`` may be a backend callable, ``None`` (numpy cumsum),
        or ``"auto"`` — the :mod:`repro.autotune` planner picks and
        refines the per-tile algorithm (see :func:`auto_tile_sats`).
        """
        ds = Dataset(
            name, matrix, tile or self.default_tile,
            track_squares=track_squares, tile_sats=tile_sats,
        )
        if ds.nbytes > self.capacity_bytes:
            raise ConfigurationError(
                f"dataset {name!r} needs {ds.nbytes} bytes; store capacity is "
                f"{self.capacity_bytes} (raise capacity_bytes or the tile size)"
            )
        with self._lock:
            self._datasets.pop(name, None)
            self._datasets[name] = ds
            self._evict_to_fit(keep=name)
            self._record_gauges()
        return ds

    def get(self, name: str) -> Dataset:
        """Fetch a dataset by name, marking it most-recently-used."""
        with self._lock:
            try:
                ds = self._datasets[name]
            except KeyError:
                raise UnknownDataset(
                    f"no dataset named {name!r} is resident (held: "
                    f"{list(self._datasets) or 'none'}); it may have been "
                    f"evicted — re-ingest it"
                ) from None
            self._datasets.move_to_end(name)
            return ds

    def drop(self, name: str) -> bool:
        """Remove a dataset; returns whether it was present."""
        with self._lock:
            present = self._datasets.pop(name, None) is not None
            self._record_gauges()
            return present

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._datasets

    def names(self) -> List[str]:
        """Resident dataset names, least- to most-recently used."""
        with self._lock:
            return list(self._datasets)

    # -- accounting ----------------------------------------------------------

    @property
    def nbytes(self) -> int:
        with self._lock:
            return sum(ds.nbytes for ds in self._datasets.values())

    def stats(self) -> Dict[str, float]:
        with self._lock:
            return {
                "datasets": len(self._datasets),
                "bytes": sum(ds.nbytes for ds in self._datasets.values()),
                "capacity_bytes": self.capacity_bytes,
                "evictions": self.evictions,
            }

    def _evict_to_fit(self, keep: str) -> None:
        used = sum(ds.nbytes for ds in self._datasets.values())
        while used > self.capacity_bytes:
            victim_name = next(iter(self._datasets))
            if victim_name == keep:  # everything else is already gone
                break
            victim = self._datasets.pop(victim_name)
            used -= victim.nbytes
            self.evictions += 1
            obs.inc("serving_store_evictions_total")

    def _record_gauges(self) -> None:
        if obs.is_enabled():
            obs.set_gauge(
                "serving_store_bytes",
                sum(ds.nbytes for ds in self._datasets.values()),
            )
            obs.set_gauge("serving_store_datasets", len(self._datasets))
