"""repro.service — the tiled SAT serving layer.

The compute side of the repo answers "how fast can one SAT be built";
this package answers "how do you *serve* SAT workloads": state that
stays resident, updates that cost what they dirty, queries that cost
what they touch, and a front end that degrades predictably under load.

* :mod:`~repro.service.store` — :class:`TiledSATStore`: named datasets
  decomposed into ``t x t`` tiles (per-tile local SATs + edge prefixes +
  corner aggregates, the repo's 2R1W block structure made resident)
  behind a bounded LRU with byte accounting;
* :mod:`~repro.service.update` — incremental point/region updates that
  re-fold only the dirty tile and its downstream aggregate suffixes,
  bit-identical to a full rebuild;
* :mod:`~repro.service.queries` — region sums, box filters, and local
  statistics from tile aggregates (at most four corner-tile lookups per
  rectangle);
* :mod:`~repro.service.server` — :class:`SATServer`: asyncio scheduler
  with bounded admission (:class:`~repro.errors.Overloaded` shedding),
  FIFO micro-batching, per-request deadlines, graceful drain, optional
  :class:`~repro.sat.batch.BatchSession` ingest offload, and
  :mod:`repro.obs` instrumentation;
* :mod:`~repro.service.adaptive` — :class:`AdaptiveController`: the
  closed-loop controller behind ``SATServer(adaptive=...)``, retuning
  batch size, coalesce window, and deadline shedding each tick from
  live queue depth / p99 / occupancy signals;
* :mod:`~repro.service.loadgen` — a seeded, oracle-verified load driver
  (``python -m repro loadgen``), including the chaos cluster volley
  (``--chaos``);
* :mod:`~repro.service.cluster` — :class:`WorkerSupervisor`: a pool of
  shard worker processes with heartbeat health checks, crash detection,
  automatic restart, and re-hydration from CRC-verified checkpoints
  (:class:`CheckpointStore`);
* :mod:`~repro.service.router` — :class:`ShardRouter`: contiguous
  tile-range placement across the pool (primary + replicas), ≤4-corner
  query fan-out with deterministic stitching, retry-with-backoff,
  replica failover, per-worker circuit breakers, and graceful
  degradation to a local oracle.
"""

from .adaptive import AdaptiveController, ControllerConfig, ObsSnapshot
from .cluster import CheckpointStore, ShardCheckpoint, WorkerSupervisor
from .loadgen import (
    ClusterLoadgenReport,
    LoadgenReport,
    run_cluster_loadgen,
    run_loadgen,
    run_overload_comparison,
)
from .router import CircuitBreaker, ShardRouter, make_placement
from .queries import (
    box_filter,
    local_stats,
    local_stats_many,
    region_mean,
    region_sum,
    region_sums,
)
from .server import Request, Response, SATServer
from .store import Dataset, TileAggregates, TiledSATStore
from .update import point_update, region_add, region_update

__all__ = [
    "AdaptiveController",
    "CheckpointStore",
    "CircuitBreaker",
    "ClusterLoadgenReport",
    "ControllerConfig",
    "Dataset",
    "LoadgenReport",
    "ObsSnapshot",
    "Request",
    "Response",
    "SATServer",
    "ShardCheckpoint",
    "ShardRouter",
    "TileAggregates",
    "TiledSATStore",
    "WorkerSupervisor",
    "box_filter",
    "local_stats",
    "local_stats_many",
    "make_placement",
    "point_update",
    "region_add",
    "region_mean",
    "region_sum",
    "region_sums",
    "region_update",
    "run_cluster_loadgen",
    "run_loadgen",
    "run_overload_comparison",
]
