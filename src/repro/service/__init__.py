"""repro.service — the tiled SAT serving layer.

The compute side of the repo answers "how fast can one SAT be built";
this package answers "how do you *serve* SAT workloads": state that
stays resident, updates that cost what they dirty, queries that cost
what they touch, and a front end that degrades predictably under load.

* :mod:`~repro.service.store` — :class:`TiledSATStore`: named datasets
  decomposed into ``t x t`` tiles (per-tile local SATs + edge prefixes +
  corner aggregates, the repo's 2R1W block structure made resident)
  behind a bounded LRU with byte accounting;
* :mod:`~repro.service.update` — incremental point/region updates that
  re-fold only the dirty tile and its downstream aggregate suffixes,
  bit-identical to a full rebuild;
* :mod:`~repro.service.queries` — region sums, box filters, and local
  statistics from tile aggregates (at most four corner-tile lookups per
  rectangle);
* :mod:`~repro.service.server` — :class:`SATServer`: asyncio scheduler
  with bounded admission (:class:`~repro.errors.Overloaded` shedding),
  FIFO micro-batching, per-request deadlines, graceful drain, optional
  :class:`~repro.sat.batch.BatchSession` ingest offload, and
  :mod:`repro.obs` instrumentation;
* :mod:`~repro.service.loadgen` — a seeded, oracle-verified load driver
  (``python -m repro loadgen``).
"""

from .loadgen import LoadgenReport, run_loadgen
from .queries import (
    box_filter,
    local_stats,
    local_stats_many,
    region_mean,
    region_sum,
    region_sums,
)
from .server import Request, Response, SATServer
from .store import Dataset, TileAggregates, TiledSATStore
from .update import point_update, region_add, region_update

__all__ = [
    "Dataset",
    "LoadgenReport",
    "Request",
    "Response",
    "SATServer",
    "TileAggregates",
    "TiledSATStore",
    "box_filter",
    "local_stats",
    "local_stats_many",
    "point_update",
    "region_add",
    "region_mean",
    "region_sum",
    "region_sums",
    "region_update",
    "run_loadgen",
]
