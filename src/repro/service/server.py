"""Asyncio serving front end: admission control, micro-batching, deadlines.

:class:`SATServer` is the request plane over a
:class:`~repro.service.store.TiledSATStore`:

* **bounded ingest queue with admission control** — :meth:`submit` never
  blocks and never queues past ``max_queue``: over the bound it raises
  :class:`~repro.errors.Overloaded` *synchronously*, so overload sheds at
  the door instead of growing latency (and the scheduler can never
  deadlock on a full queue it is itself draining);
* **FIFO scheduling with micro-batching** — the scheduler drains the
  queue in submission order and coalesces each maximal contiguous run of
  compatible requests (same dataset, batchable kind) into one vectorized
  call (:func:`~repro.service.queries.region_sums`,
  :func:`~repro.service.queries.local_stats_many`). Batching only
  contiguous runs preserves global FIFO order, so same-dataset updates
  and queries interleave exactly as submitted — the property the loadgen
  oracle checks;
* **per-request deadlines** — a request whose deadline passed while it
  queued resolves to :class:`~repro.errors.DeadlineExceeded` instead of
  burning compute on an answer nobody is waiting for;
* **graceful drain** — :meth:`drain` stops admission (late submits shed
  as ``Overloaded``) and runs the queue dry before stopping the
  scheduler; nothing already admitted is lost;
* **compute offload** — ingest tile SATs can be computed through the
  multi-core :class:`~repro.sat.batch.BatchSession` (tiles are exactly a
  same-shape batch), and any blocking compute runs in a worker thread so
  the event loop keeps admitting and shedding;
* **observability** — queue-depth gauge, per-kind latency histograms,
  shed/deadline counters, and update/query spans through
  :mod:`repro.obs`.

Every response carries the request's sequence number and a server-side
completion index, so clients can verify the zero-lost / zero-misordered
contract end to end.
"""

from __future__ import annotations

import asyncio
import logging
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError, DeadlineExceeded, DrainTimeout, Overloaded
from ..obs import runtime as obs
from . import queries as q
from .adaptive import AdaptiveController, ControllerConfig
from .store import TiledSATStore, TileSATFn

if TYPE_CHECKING:  # pragma: no cover — typing only, no import cycle at runtime
    from .router import ShardRouter

__all__ = ["Request", "Response", "SATServer"]

#: Kinds the micro-batcher may coalesce (vectorized execution exists and
#: the results are independent per request).
BATCHABLE = frozenset({"region_sum", "local_stats"})

#: Default bound for :meth:`SATServer.close` when neither the call nor the
#: constructor configured one — generous (shutdown should normally win by
#: orders of magnitude) but finite, so close() can never hang forever.
DEFAULT_CLOSE_TIMEOUT = 30.0

#: Sentinel distinguishing "use the constructor's drain_timeout" from an
#: explicit ``timeout=None`` (wait forever) at the drain() call site.
_UNSET = object()

logger = logging.getLogger("repro.service")


@dataclass
class Request:
    """One admitted unit of work."""

    kind: str
    dataset: str
    payload: Any
    seq: int
    enqueued_at: float
    deadline: Optional[float]  # absolute, on the server clock
    future: "asyncio.Future[Response]"


@dataclass
class Response:
    """The result envelope every request future resolves to."""

    seq: int
    value: Any
    completed_index: int
    latency: float
    batch_size: int = 1


@dataclass
class ServerStats:
    """Monotonic counters mirrored to ``repro.obs`` (readable without it)."""

    admitted: int = 0
    completed: int = 0
    shed: int = 0
    deadline_missed: int = 0
    batches: int = 0
    max_queue_depth: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "admitted": self.admitted,
            "completed": self.completed,
            "shed": self.shed,
            "deadline_missed": self.deadline_missed,
            "batches": self.batches,
            "max_queue_depth": self.max_queue_depth,
            "by_kind": dict(self.by_kind),
        }


class SATServer:
    """Async request scheduler over a :class:`TiledSATStore`.

    Use as an async context manager, or pair :meth:`start` with
    :meth:`drain`. ``clock`` is injectable for deterministic deadline
    tests.
    """

    def __init__(
        self,
        store: Optional[TiledSATStore] = None,
        *,
        max_queue: int = 256,
        max_batch: int = 64,
        session=None,
        clock: Callable[[], float] = time.monotonic,
        drain_timeout: Optional[float] = None,
        router: Optional["ShardRouter"] = None,
        coalesce_window: Optional[float] = None,
        coalesce_max_points: Optional[int] = None,
        adaptive=None,
    ):
        if max_queue < 1:
            raise ConfigurationError(f"max_queue must be >= 1, got {max_queue}")
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        if drain_timeout is not None and drain_timeout <= 0:
            raise ConfigurationError(
                f"drain_timeout must be positive (or None), got {drain_timeout}"
            )
        if router is None and (coalesce_window is not None
                               or coalesce_max_points is not None):
            raise ConfigurationError(
                "coalesce_window/coalesce_max_points tune the cluster "
                "router's request coalescer; pass router= as well"
            )
        self.router = router
        if router is not None:
            # The server's micro-batches feed straight into the router's
            # coalescer, so its window/size knobs are exposed here.
            if coalesce_window is not None:
                router.coalesce_window = coalesce_window
            if coalesce_max_points is not None:
                router.coalesce_max_points = coalesce_max_points
        self.store = store if store is not None else TiledSATStore()
        self.max_queue = max_queue
        self.max_batch = max_batch
        # Adaptive micro-batching: pass True for the default closed-loop
        # controller (capped at this server's max_batch), a
        # ControllerConfig for tuned thresholds, or a ready
        # AdaptiveController (tests inject fake-clocked ones). When set,
        # the controller's live batch_size replaces the fixed max_batch
        # as the micro-batch ceiling, its coalesce_window adds a bounded
        # wait for undersized batchable runs (and retunes the cluster
        # router's coalescer), and predicted-deadline shedding runs at
        # admission.
        if adaptive is None or adaptive is False:
            self.controller: Optional[AdaptiveController] = None
        elif isinstance(adaptive, AdaptiveController):
            self.controller = adaptive
        elif isinstance(adaptive, ControllerConfig):
            self.controller = AdaptiveController(adaptive, clock=clock)
        elif adaptive is True:
            self.controller = AdaptiveController(
                ControllerConfig(
                    max_batch=max_batch,
                    initial_batch=max(1, min(8, max_batch)),
                ),
                clock=clock,
            )
        else:
            raise ConfigurationError(
                f"adaptive must be True, a ControllerConfig, or an "
                f"AdaptiveController, got {adaptive!r}"
            )
        self.session = session  # optional BatchSession for ingest offload
        self.clock = clock
        self.drain_timeout = drain_timeout
        self.stats = ServerStats()
        self._queue: "asyncio.Queue[Request]" = asyncio.Queue()
        self._held: Optional[Request] = None  # incompatible head, runs next
        self._accepting = False
        self._busy = False  # a dequeued batch is executing
        self._executing: List[Request] = []  # the dequeued batch itself
        self._scheduler: Optional[asyncio.Task] = None
        self._seq = 0
        self._completed = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "SATServer":
        if self._scheduler is not None:
            raise ConfigurationError("server already started")
        self._accepting = True
        self._scheduler = asyncio.ensure_future(self._run())
        return self

    async def drain(self, timeout=_UNSET) -> None:
        """Stop admission, run the queue dry, stop the scheduler.

        ``timeout`` (seconds; default: the constructor's ``drain_timeout``)
        bounds the wait. If work is still queued or executing when it
        expires — a wedged worker thread, typically — every unfinished
        request's future receives :class:`~repro.errors.DrainTimeout`, the
        in-flight count is logged, the scheduler is cancelled, and the
        same ``DrainTimeout`` raises to the caller. ``timeout=None`` waits
        forever (the pre-timeout behavior).
        """
        if timeout is _UNSET:
            timeout = self.drain_timeout
        self._accepting = False
        deadline = None if timeout is None else self.clock() + timeout
        while self._held is not None or not self._queue.empty() or self._busy:
            if deadline is not None and self.clock() > deadline:
                await self._abort_drain(timeout)
                return  # _abort_drain always raises
            await asyncio.sleep(0.001)
        # Nothing queued, held, or in flight, and admission is closed: the
        # scheduler can only be parked on queue.get(), so cancelling here
        # cannot lose an admitted request.
        await self._stop_scheduler()

    async def close(self, timeout: Optional[float] = None) -> None:
        """Drain with a *bounded* wait — shutdown can never hang forever.

        Uses ``timeout``, else the constructor's ``drain_timeout``, else
        :data:`DEFAULT_CLOSE_TIMEOUT`; raises
        :class:`~repro.errors.DrainTimeout` if the bound expires.
        """
        if timeout is None:
            timeout = self.drain_timeout
        if timeout is None:
            timeout = DEFAULT_CLOSE_TIMEOUT
        await self.drain(timeout=timeout)

    async def _abort_drain(self, timeout) -> None:
        """Fail everything still pending with DrainTimeout, then raise it."""
        pending: List[Request] = list(self._executing)
        if self._held is not None:
            pending.append(self._held)
            self._held = None
        while True:
            try:
                pending.append(self._queue.get_nowait())
            except asyncio.QueueEmpty:
                break
        error = DrainTimeout(
            f"server drain did not finish within {timeout}s; "
            f"{len(pending)} request(s) still in flight"
        )
        logger.warning(
            "drain timed out after %ss with %d in-flight request(s); "
            "failing them with DrainTimeout", timeout, len(pending),
        )
        obs.inc("serving_drain_timeouts_total")
        for request in pending:
            if not request.future.done():
                request.future.set_exception(error)
        await self._stop_scheduler()
        raise error

    async def _stop_scheduler(self) -> None:
        if self._scheduler is not None:
            self._scheduler.cancel()
            try:
                await self._scheduler
            except asyncio.CancelledError:
                pass
            self._scheduler = None

    async def __aenter__(self) -> "SATServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.drain()

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize() + (1 if self._held is not None else 0)

    @property
    def batch_limit(self) -> int:
        """The live micro-batch ceiling: the controller's when adaptive,
        the fixed ``max_batch`` otherwise."""
        if self.controller is not None:
            return self.controller.batch_size
        return self.max_batch

    def _controller_tick(self, *, force: bool = False) -> None:
        """Run one (rate-limited) control decision off the live queue
        state, and propagate a retuned coalesce window to the router."""
        controller = self.controller
        if controller is None:
            return
        if force:
            ticked = controller.tick(
                controller.snapshot(self.queue_depth, self.max_queue),
                force=True,
            )
        else:
            ticked = controller.maybe_tick(self.queue_depth, self.max_queue)
        if ticked and self.router is not None:
            self.router.coalesce_window = controller.coalesce_window

    # -- admission -----------------------------------------------------------

    def submit(self, kind: str, dataset: str, payload: Any = None, *,
               timeout: Optional[float] = None) -> "asyncio.Future[Response]":
        """Admit one request, or shed it with :class:`Overloaded`.

        Non-blocking by construction: either the request fits under the
        queue bound and a future is returned, or ``Overloaded`` raises
        immediately. ``timeout`` (seconds) sets the request's deadline
        relative to now.
        """
        if not self._accepting:
            obs.inc("serving_shed_total", reason="draining")
            self.stats.shed += 1
            raise Overloaded(
                "server is not accepting requests (not started, or draining)"
            )
        # Tick on the admission path too: under a burst the scheduler may
        # be deep in compute, and shedding must engage from live queue
        # depth, not from the last time a batch finished. Rate-limited, so
        # the common case is one comparison.
        self._controller_tick()
        if self.queue_depth >= self.max_queue:
            obs.inc("serving_shed_total", reason="queue_full")
            self.stats.shed += 1
            raise Overloaded(
                f"ingest queue is full ({self.max_queue} requests); retry "
                f"with backoff"
            )
        if self.controller is not None and self.controller.should_shed(timeout):
            obs.inc("serving_shed_total", reason="predicted_deadline")
            self.stats.shed += 1
            raise Overloaded(
                f"shedding engaged and the {timeout}s deadline budget is "
                f"below the live p99 estimate; this request would expire "
                f"in the queue"
            )
        now = self.clock()
        self._seq += 1
        request = Request(
            kind=kind,
            dataset=dataset,
            payload=payload,
            seq=self._seq,
            enqueued_at=now,
            deadline=None if timeout is None else now + timeout,
            future=asyncio.get_running_loop().create_future(),
        )
        self._queue.put_nowait(request)
        self.stats.admitted += 1
        self.stats.by_kind[kind] = self.stats.by_kind.get(kind, 0) + 1
        depth = self.queue_depth
        if depth > self.stats.max_queue_depth:
            self.stats.max_queue_depth = depth
        obs.inc("serving_requests_total", kind=kind)
        obs.set_gauge("serving_queue_depth", depth)
        return request.future

    # Typed conveniences — each returns the resolved Response.

    async def ingest(self, name: str, matrix: np.ndarray, *,
                     tile: Optional[int] = None, track_squares: bool = False,
                     timeout: Optional[float] = None) -> Response:
        payload = {"matrix": matrix, "tile": tile, "track_squares": track_squares}
        return await self.submit("ingest", name, payload, timeout=timeout)

    async def region_sum(self, name: str, top: int, left: int, bottom: int,
                         right: int, *, timeout: Optional[float] = None) -> Response:
        return await self.submit(
            "region_sum", name, (top, left, bottom, right), timeout=timeout
        )

    async def local_stats(self, name: str, r: int, c: int, radius: int, *,
                          timeout: Optional[float] = None) -> Response:
        return await self.submit("local_stats", name, (r, c, radius), timeout=timeout)

    async def box_filter(self, name: str, radius: int, *,
                         timeout: Optional[float] = None) -> Response:
        return await self.submit("box_filter", name, radius, timeout=timeout)

    async def update_point(self, name: str, r: int, c: int, *,
                           delta=None, value=None,
                           timeout: Optional[float] = None) -> Response:
        return await self.submit(
            "update_point", name,
            {"r": r, "c": c, "delta": delta, "value": value}, timeout=timeout,
        )

    async def update_region(self, name: str, top: int, left: int,
                            values: np.ndarray, *, add: bool = False,
                            timeout: Optional[float] = None) -> Response:
        return await self.submit(
            "update_region", name,
            {"top": top, "left": left, "values": values, "add": add},
            timeout=timeout,
        )

    # -- scheduling ----------------------------------------------------------

    async def _next_request(self) -> Request:
        if self._held is not None:
            request, self._held = self._held, None
            return request
        return await self._queue.get()

    def _take_compatible(self, head: Request) -> List[Request]:
        """The maximal contiguous batchable run starting at ``head``."""
        batch = [head]
        if head.kind not in BATCHABLE:
            return batch
        while len(batch) < self.batch_limit:
            try:
                nxt = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if nxt.kind == head.kind and nxt.dataset == head.dataset:
                batch.append(nxt)
            else:
                self._held = nxt  # preserve FIFO: run it next, alone or as
                break             # the head of its own batch
        return batch

    async def _run(self) -> None:
        while True:
            head = await self._next_request()
            # _busy flips synchronously with the dequeue (no await between),
            # so drain() can never observe "queue empty, nothing in flight"
            # while a batch is actually executing.
            self._busy = True
            try:
                batch = self._take_compatible(head)
                self._executing = batch  # visible to a timing-out drain
                batch = await self._maybe_extend(batch)
                obs.set_gauge("serving_queue_depth", self.queue_depth)
                try:
                    await self._execute(batch)
                except asyncio.CancelledError:
                    raise
                except BaseException as exc:  # defensive: never kill the loop
                    for request in batch:
                        if not request.future.done():
                            request.future.set_exception(exc)
                self._controller_tick()
            finally:
                self._executing = []
                self._busy = False

    async def _maybe_extend(self, batch: List[Request]) -> List[Request]:
        """Adaptive coalesce window: an undersized batchable run waits up
        to the controller's window for more compatible arrivals before
        executing — the local analogue of the cluster coalescer's window.
        No-op without a controller (fixed-knob servers never wait)."""
        controller = self.controller
        if (controller is None or controller.coalesce_window <= 0.0
                or batch[0].kind not in BATCHABLE
                or len(batch) >= self.batch_limit
                # An incompatible request is already parked in the single-slot
                # _held; waiting would let the loop below overwrite it (its
                # future would never resolve) and would invert FIFO. Run the
                # current batch now so the held request goes next.
                or self._held is not None):
            return batch
        await asyncio.sleep(controller.coalesce_window)
        head = batch[0]
        while len(batch) < self.batch_limit:
            try:
                nxt = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if nxt.kind == head.kind and nxt.dataset == head.dataset:
                batch.append(nxt)
            else:
                self._held = nxt
                break
        self._executing = batch
        return batch

    async def _execute(self, batch: List[Request]) -> None:
        now = self.clock()
        live: List[Request] = []
        for request in batch:
            if request.deadline is not None and now > request.deadline:
                self.stats.deadline_missed += 1
                obs.inc("serving_deadline_missed_total", kind=request.kind)
                self._resolve_exc(
                    request,
                    DeadlineExceeded(
                        f"request {request.seq} ({request.kind}) queued "
                        f"{now - request.enqueued_at:.3f}s, past its deadline"
                    ),
                )
            else:
                live.append(request)
        if not live:
            return
        self.stats.batches += 1
        obs.inc("serving_batches_total", kind=live[0].kind)
        obs.observe("serving_batch_size", len(live), kind=live[0].kind)
        if self.controller is not None and live[0].kind in BATCHABLE:
            self.controller.observe_batch(len(live))
        try:
            values = await self._dispatch(live)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            for request in live:
                self._resolve_exc(request, exc)
            return
        done = self.clock()
        for request, value in zip(live, values):
            self._completed += 1
            self.stats.completed += 1
            latency = done - request.enqueued_at
            obs.observe("serving_request_seconds", latency, kind=request.kind)
            if self.controller is not None:
                self.controller.observe_latency(latency)
            if not request.future.done():
                request.future.set_result(Response(
                    seq=request.seq, value=value,
                    completed_index=self._completed, latency=latency,
                    batch_size=len(live),
                ))

    def _resolve_exc(self, request: Request, exc: BaseException) -> None:
        self._completed += 1
        if not request.future.done():
            request.future.set_exception(exc)

    async def _dispatch(self, live: List[Request]) -> List[Any]:
        """Execute one compatible batch and return one value per request."""
        if self.router is not None:
            return await self._dispatch_cluster(live)
        kind = live[0].kind
        if kind == "region_sum":
            ds = self.store.get(live[0].dataset)
            rects = np.array([r.payload for r in live], dtype=np.int64)
            sums = q.region_sums(ds, rects)
            return [s.item() for s in sums]
        if kind == "local_stats":
            ds = self.store.get(live[0].dataset)
            radius = live[0].payload[2]
            if any(r.payload[2] != radius for r in live):
                # Mixed radii still vectorize per distinct radius.
                out = []
                for r in live:
                    mean, var = q.local_stats(ds, r.payload[0], r.payload[1],
                                              r.payload[2])
                    out.append((mean, var))
                return out
            points = np.array([r.payload[:2] for r in live], dtype=np.int64)
            mean, var = q.local_stats_many(ds, points, radius)
            return list(zip(mean.tolist(), var.tolist()))
        request = live[0]
        if kind == "box_filter":
            ds = self.store.get(request.dataset)
            return [q.box_filter(ds, request.payload)]
        if kind == "update_point":
            ds = self.store.get(request.dataset)
            p = request.payload
            ds.update_point(p["r"], p["c"], delta=p["delta"], value=p["value"])
            return [ds.version]
        if kind == "update_region":
            ds = self.store.get(request.dataset)
            p = request.payload
            if p["add"]:
                ds.add_region(p["top"], p["left"], p["values"])
            else:
                ds.update_region(p["top"], p["left"], p["values"])
            return [ds.version]
        if kind == "ingest":
            p = request.payload
            with obs.span("serving_ingest", dataset=request.dataset):
                tile_sats = self._session_tile_sats()
                # Decomposition + folding is blocking numpy work (and may
                # fan out through the BatchSession's process pool); keep
                # the event loop free to admit and shed meanwhile.
                ds = await asyncio.to_thread(
                    self.store.put, request.dataset, p["matrix"],
                    tile=p["tile"], track_squares=p["track_squares"],
                    tile_sats=tile_sats,
                )
            return [ds.shape]
        raise ConfigurationError(f"unknown request kind {kind!r}")

    async def _dispatch_cluster(self, live: List[Request]) -> List[Any]:
        """Cluster mode: execute a compatible batch through the router.

        A whole micro-batch of ``region_sum`` requests becomes *one*
        :meth:`~repro.service.router.ShardRouter.region_sums` call — the
        server's FIFO batcher feeding the router's per-range coalescer is
        exactly the "wire micro-batching into the coalescer" path, so a
        burst of scalar queries costs one worker round trip per range per
        wave. Blocking router calls run on a worker thread; the loop
        keeps admitting and shedding.
        """
        router = self.router
        assert router is not None
        kind = live[0].kind
        name = live[0].dataset
        if kind == "region_sum":
            rects = np.array([r.payload for r in live], dtype=np.int64)
            sums = await asyncio.to_thread(router.region_sums, name, rects)
            return [s.item() for s in sums]
        request = live[0]
        if kind == "update_point":
            p = request.payload
            await asyncio.to_thread(
                router.update_point, name, p["r"], p["c"],
                delta=p["delta"], value=p["value"],
            )
            return [router.checkpoints.dataset(name).version]
        if kind == "update_region":
            p = request.payload
            apply_fn = router.add_region if p["add"] else router.update_region
            await asyncio.to_thread(
                apply_fn, name, p["top"], p["left"], p["values"]
            )
            return [router.checkpoints.dataset(name).version]
        if kind == "ingest":
            p = request.payload
            if p["track_squares"]:
                raise ConfigurationError(
                    "the cluster router does not serve squared aggregates; "
                    "ingest with track_squares=False (or serve locally)"
                )
            with obs.span("serving_ingest", dataset=name):
                kwargs = {} if p["tile"] is None else {"tile": p["tile"]}
                ds = await asyncio.to_thread(
                    router.ingest, name, p["matrix"], **kwargs
                )
            return [ds.shape]
        raise ConfigurationError(
            f"request kind {kind!r} is not servable through the cluster "
            f"router; serve it from a local TiledSATStore"
        )

    def _session_tile_sats(self) -> Optional[TileSATFn]:
        if self.session is None:
            return None
        session = self.session

        def tile_sats(tiles: np.ndarray) -> np.ndarray:
            # Tiles are a same-shape batch — exactly what BatchSession
            # serves; its SATs are bit-identical to the numpy chains (the
            # conformance suite's contract), so offloaded ingest preserves
            # the store's bit-identity guarantee.
            return np.stack(list(session.map(list(tiles))))

        return tile_sats
