"""Shard routing with failover, circuit breaking, and graceful degradation.

The :class:`ShardRouter` is the cluster's front door. It owns *policy*:
where each dataset's tile ranges live (contiguous row-major placement,
primary + replica), which worker a corner lookup should try first, when
to stop trying a flapping worker (per-worker circuit breaker), and what
to do when every replica of a range is dark (degrade to the local
authoritative oracle — slower, never wrong). Mechanism — processes,
heartbeats, restarts, checkpoints — lives in
:mod:`repro.service.cluster`.

Query path: a region sum is at most four corner evaluations of the
global SAT (the 2R1W decomposition's O(1) serving guarantee). Each
corner maps to one tile, hence one range, hence an ordered candidate
list ``[primary, replica, ...]``. The router tries candidates with
closed breakers first, laying :class:`~repro.util.backoff.ExponentialBackoff`
pauses between attempts; a :class:`~repro.errors.WorkerUnavailable` from
the supervisor records a breaker failure and moves on. The four corner
values are stitched with the same inclusion–exclusion, in the same
order, as the single-store :func:`repro.service.queries.region_sum`, so a
clustered answer is bit-identical to the local one no matter which
replica served each corner.

Admission control mirrors :class:`~repro.service.server.SATServer`:
requests beyond ``max_inflight`` are shed with
:class:`~repro.errors.Overloaded` at submission, and a request whose
deadline has passed gets :class:`~repro.errors.DeadlineExceeded` before
any worker is bothered.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import (
    ConfigurationError,
    DeadlineExceeded,
    Overloaded,
    ShapeError,
    WorkerUnavailable,
)
from ..obs import runtime as obs
from ..util.backoff import Clock, ExponentialBackoff, SystemClock
from .cluster import ALIVE, CheckpointStore, WorkerSupervisor
from .store import DEFAULT_TILE, Dataset
from .update import point_update, region_add, region_update

__all__ = ["CircuitBreaker", "ShardRouter", "make_placement"]

logger = logging.getLogger("repro.service.router")


# =============================================================================
# Placement
# =============================================================================


def make_placement(nb_tiles: int, n_workers: int,
                   replicas: int = 2) -> List[Tuple[Tuple[int, int], List[int]]]:
    """Contiguous tile-range shards with primary + replica copies.

    Splits ``nb_tiles`` row-major linearized tile indices into
    ``min(n_workers, nb_tiles)`` contiguous ranges (balanced to within
    one tile) and assigns range ``w`` to workers ``[w, w+1, ...] mod N``
    — primary first, then ``replicas - 1`` successors, so losing any one
    worker leaves every range with a live copy and a restarted worker's
    shards are disjoint contiguous blocks (cheap to re-hydrate).

    Returns ``[((lo, hi), [worker, ...]), ...]`` indexed by range id.
    """
    if n_workers < 1:
        raise ConfigurationError(f"placement needs >= 1 worker, got {n_workers}")
    if replicas < 1:
        raise ConfigurationError(f"placement needs >= 1 replica, got {replicas}")
    n_ranges = min(n_workers, nb_tiles)
    copies = min(replicas, n_workers)
    out: List[Tuple[Tuple[int, int], List[int]]] = []
    for w in range(n_ranges):
        lo = (w * nb_tiles) // n_ranges
        hi = ((w + 1) * nb_tiles) // n_ranges
        owners = [(w + k) % n_workers for k in range(copies)]
        out.append(((lo, hi), owners))
    return out


# =============================================================================
# Circuit breaker
# =============================================================================


@dataclass
class CircuitBreaker:
    """Per-worker breaker: open after K consecutive failures, half-open probe.

    Closed (healthy) → ``failures_to_open`` consecutive failures → open
    (skip this worker) → after ``cooldown`` seconds → half-open (admit
    *one* probe; success closes, failure re-opens). A worker restart
    (visible as a new supervisor epoch) closes the breaker immediately —
    the restarted process shares nothing with the one that failed.
    """

    failures_to_open: int = 3
    cooldown: float = 1.0
    clock: Clock = field(default_factory=SystemClock)
    failures: int = 0
    opened_at: Optional[float] = None
    half_open: bool = False
    epoch_seen: int = -1
    lock: threading.Lock = field(default_factory=threading.Lock)

    def allows(self, epoch: int) -> bool:
        """May we send this worker a request right now?"""
        with self.lock:
            if epoch != self.epoch_seen:  # restarted since we tripped
                self._reset(epoch)
            if self.opened_at is None:
                return True
            if self.half_open:  # a probe is already in flight
                return False
            if self.clock.now() - self.opened_at >= self.cooldown:
                self.half_open = True  # this caller is the probe
                return True
            return False

    def record_success(self, epoch: int) -> None:
        with self.lock:
            self._reset(epoch)

    def record_failure(self, epoch: int) -> bool:
        """Record a failure; returns True if this transition *opened* it."""
        with self.lock:
            if epoch != self.epoch_seen:
                self._reset(epoch)
            self.failures += 1
            if self.half_open:  # failed probe: straight back to open
                self.half_open = False
                self.opened_at = self.clock.now()
                return False
            if self.opened_at is None and self.failures >= self.failures_to_open:
                self.opened_at = self.clock.now()
                return True
            return False

    def _reset(self, epoch: int) -> None:
        self.failures = 0
        self.opened_at = None
        self.half_open = False
        self.epoch_seen = epoch

    @property
    def state(self) -> str:
        with self.lock:
            if self.opened_at is None:
                return "closed"
            return "half-open" if self.half_open else "open"


# =============================================================================
# Router
# =============================================================================


class _DatasetRoute:
    """Routing state for one dataset: its placement and geometry."""

    __slots__ = ("name", "tile", "nb_c", "placement")

    def __init__(self, name: str, tile: int, nb_c: int,
                 placement: List[Tuple[Tuple[int, int], List[int]]]):
        self.name = name
        self.tile = tile
        self.nb_c = nb_c
        self.placement = placement

    def range_of(self, lin: int) -> int:
        for rid, ((lo, hi), _owners) in enumerate(self.placement):
            if lo <= lin < hi:
                return rid
        raise ShapeError(f"tile {lin} outside every range of {self.name!r}")


class ShardRouter:
    """Front end of the sharded cluster: ingest, update fan-out, queries.

    Writes go through the *authoritative* dataset first (the ordinary
    bit-exact incremental-update paths), then fan the changed shard state
    out to every live worker under the supervisor's topology lock — a
    worker therefore either holds state at the authoritative version or
    is down and will re-hydrate to it. Reads fan ≤ 4 corner lookups out
    to shards and stitch; failures fail over primary → replica with
    backoff, breakers skip flapping workers, and a range with no
    servable replica degrades the *whole query* to the authoritative
    oracle (counted, logged — degraded mode is loud, never silent).
    """

    def __init__(
        self,
        supervisor: WorkerSupervisor,
        *,
        replicas: int = 2,
        max_attempts: int = 3,
        backoff: Optional[ExponentialBackoff] = None,
        clock: Optional[Clock] = None,
        max_inflight: int = 256,
        degrade: bool = True,
        rpc_timeout: float = 2.0,
        breaker_failures: int = 3,
        breaker_cooldown: float = 1.0,
    ):
        if replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
        if max_attempts < 1:
            raise ConfigurationError(f"max_attempts must be >= 1, got {max_attempts}")
        self.supervisor = supervisor
        self.checkpoints: CheckpointStore = supervisor.checkpoints
        self.replicas = replicas
        self.max_attempts = max_attempts
        self.backoff = backoff or ExponentialBackoff(base=0.005, factor=2.0, cap=0.05)
        self.clock = clock if clock is not None else SystemClock()
        self.max_inflight = max_inflight
        self.degrade = degrade
        self.rpc_timeout = rpc_timeout
        self.breakers = [
            CircuitBreaker(
                failures_to_open=breaker_failures,
                cooldown=breaker_cooldown,
                clock=self.clock,
            )
            for _ in range(supervisor.workers)
        ]
        self._routes: Dict[str, _DatasetRoute] = {}
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self.counters: Dict[str, int] = {
            "requests": 0, "failovers": 0, "retries": 0, "degraded": 0,
            "shed": 0, "deadline_missed": 0, "breaker_opens": 0,
        }

    # -- ingest ---------------------------------------------------------------

    def ingest(self, name: str, matrix: np.ndarray, *,
               tile: int = DEFAULT_TILE) -> Dataset:
        """Build the dataset, register checkpoints, push shards to workers.

        The authoritative copy lives in the checkpoint store; each range's
        checkpoint is cut once and shipped to all of its owners (the same
        CRC-verified payload a post-crash re-hydration would load, so
        ingest exercises the recovery path on every run).
        """
        sup = self.supervisor
        ds = Dataset(name, matrix, tile)
        nb_tiles = ds.values.nb_r * ds.values.nb_c
        placement = make_placement(nb_tiles, sup.workers, self.replicas)
        route = _DatasetRoute(name, ds.values.t, ds.values.nb_c, placement)
        with sup.topology_lock:
            self.checkpoints.register(ds, [rng for rng, _ in placement])
            # Rebuild each worker's assignment list for this dataset.
            for worker_id, assigned in sup.assignments.items():
                sup.assignments[worker_id] = [
                    (n, r) for (n, r) in assigned if n != name
                ]
            fresh: set = set()
            for rid, (_rng, owners) in enumerate(placement):
                cp = self.checkpoints.payload_for(name, rid)
                for worker_id in owners:
                    sup.assignments[worker_id].append((name, rid))
                    if sup.handles[worker_id].state != ALIVE:
                        continue  # restart will re-hydrate from the checkpoint
                    try:
                        sup.load_shard(worker_id, name, cp,
                                       reset=worker_id not in fresh)
                        fresh.add(worker_id)
                    except WorkerUnavailable:
                        pass  # marked down; the monitor owns its recovery
            self._routes[name] = route
        obs.inc("cluster_ingests_total")
        return ds

    def drop(self, name: str) -> None:
        sup = self.supervisor
        with sup.topology_lock:
            self._routes.pop(name, None)
            self.checkpoints.drop(name)
            for worker_id, assigned in sup.assignments.items():
                sup.assignments[worker_id] = [
                    (n, r) for (n, r) in assigned if n != name
                ]
                if sup.handles[worker_id].state == ALIVE:
                    try:
                        sup.rpc(worker_id, ("drop", name), timeout=self.rpc_timeout)
                    except WorkerUnavailable:
                        pass

    # -- updates --------------------------------------------------------------

    def update_point(self, name: str, r: int, c: int, *,
                     delta=None, value=None) -> None:
        ds = self.checkpoints.dataset(name)
        t = ds.values.t
        with self.supervisor.topology_lock:
            point_update(ds, r, c, delta=delta, value=value)
            self._push_delta(name, ds, r // t, c // t, r // t, c // t)

    def update_region(self, name: str, top: int, left: int,
                      values: np.ndarray) -> None:
        self._region_write(name, top, left, np.asarray(values), region_update)

    def add_region(self, name: str, top: int, left: int,
                   delta: np.ndarray) -> None:
        self._region_write(name, top, left, np.asarray(delta), region_add)

    def _region_write(self, name, top, left, block, apply_fn) -> None:
        ds = self.checkpoints.dataset(name)
        t = ds.values.t
        bottom = top + block.shape[0] - 1
        right = left + block.shape[1] - 1
        with self.supervisor.topology_lock:
            apply_fn(ds, top, left, block)
            self._push_delta(name, ds, top // t, left // t, bottom // t, right // t)

    def _push_delta(self, name: str, ds: Dataset,
                    i0: int, j0: int, i1: int, j1: int) -> None:
        """Fan an update's changed shard state out to every live owner.

        Caller holds the topology lock (so this cannot interleave with a
        re-hydration) and has already applied the update to the
        authoritative dataset. A push failure marks the worker down — it
        will re-hydrate to the current version, so a missed delta can
        never leave a stale replica serving.
        """
        components = ds.values.shard_delta(i0, j0, i1, j1)
        version = ds.version
        sup = self.supervisor
        pushed = 0
        for worker_id, assigned in sup.assignments.items():
            if not any(n == name for (n, _r) in assigned):
                continue
            if sup.handles[worker_id].state != ALIVE:
                continue
            try:
                sup.rpc(worker_id, ("delta", name, version, components),
                        timeout=self.rpc_timeout)
                pushed += 1
            except WorkerUnavailable:
                logger.warning(
                    "delta push for %r v%d lost worker %d; it will re-hydrate",
                    name, version, worker_id,
                )
        obs.inc("cluster_delta_pushes_total", pushed)

    # -- queries --------------------------------------------------------------

    def region_sum(self, name: str, top: int, left: int, bottom: int,
                   right: int, *, timeout: Optional[float] = None):
        """Rectangle sum served from the shards, bit-identical to local.

        Sheds with :class:`Overloaded` beyond ``max_inflight``; honors
        ``timeout`` (seconds from now) with :class:`DeadlineExceeded`
        both at admission and between failover attempts. If any corner's
        range has no servable replica the whole query degrades to the
        authoritative oracle (when ``degrade=True``) or raises the last
        :class:`WorkerUnavailable`.
        """
        route = self._route(name)
        rows_cols = self.checkpoints.dataset(name).shape
        _check_rect(rows_cols, top, left, bottom, right)
        deadline = None if timeout is None else self.clock.now() + timeout
        with self._inflight_lock:
            if self._inflight >= self.max_inflight:
                self.counters["shed"] += 1
                obs.inc("cluster_shed_total")
                raise Overloaded(
                    f"cluster router at max_inflight={self.max_inflight}; "
                    f"retry with backoff"
                )
            self._inflight += 1
        try:
            self.counters["requests"] += 1
            obs.inc("cluster_requests_total", kind="region_sum")
            # The four SAT corners, in the canonical stitch order of
            # queries.region_sum (term order fixes the float rounding).
            corners: List[Tuple[Tuple[int, int], int]] = [((bottom, right), +1)]
            if top > 0:
                corners.append(((top - 1, right), -1))
            if left > 0:
                corners.append(((bottom, left - 1), -1))
            if top > 0 and left > 0:
                corners.append(((top - 1, left - 1), +1))
            values = self._lookup_corners(
                route, [pt for pt, _sign in corners], deadline
            )
            total = values[0]
            for (_pt, sign), value in zip(corners[1:], values[1:]):
                total = total + value if sign > 0 else total - value
            return total
        finally:
            with self._inflight_lock:
                self._inflight -= 1

    def _lookup_corners(self, route: _DatasetRoute,
                        points: Sequence[Tuple[int, int]],
                        deadline: Optional[float]) -> List[Any]:
        """Evaluate SAT corners via the shards, grouped by range.

        Any unservable group degrades the *whole* call — partial mixing
        of shard answers and oracle answers is pointless once the oracle
        (which can answer every corner) has to run anyway.
        """
        by_range: Dict[int, List[int]] = {}
        for idx, (r, c) in enumerate(points):
            lin = (r // route.tile) * route.nb_c + (c // route.tile)
            by_range.setdefault(route.range_of(lin), []).append(idx)
        out: List[Any] = [None] * len(points)
        for rid, idxs in by_range.items():
            batch = [points[i] for i in idxs]
            try:
                values = self._lookup_on_range(route, rid, batch, deadline)
            except WorkerUnavailable:
                if not self.degrade:
                    raise
                return self._degraded_corners(route.name, points)
            for i, v in zip(idxs, values):
                out[i] = v
        return out

    def _lookup_on_range(self, route: _DatasetRoute, rid: int,
                         points: List[Tuple[int, int]],
                         deadline: Optional[float]) -> List[Any]:
        """Try a range's owners primary-first with breaker gating + backoff."""
        sup = self.supervisor
        owners = route.placement[rid][1]
        last_error: Optional[WorkerUnavailable] = None
        for attempt in range(self.max_attempts):
            if attempt > 0:
                self.counters["retries"] += 1
                obs.inc("cluster_retries_total")
                self.backoff.pause(self.clock, attempt - 1)
            if deadline is not None and self.clock.now() > deadline:
                self.counters["deadline_missed"] += 1
                obs.inc("cluster_deadline_missed_total")
                raise DeadlineExceeded(
                    f"deadline passed after {attempt} attempt(s) on range {rid} "
                    f"of {route.name!r}"
                )
            for nth, worker_id in enumerate(owners):
                handle = sup.handles[worker_id]
                if handle.state != ALIVE:
                    continue
                breaker = self.breakers[worker_id]
                if not breaker.allows(handle.epoch):
                    continue
                try:
                    values, _version = sup.rpc(
                        worker_id, ("lookup", route.name, points),
                        timeout=self.rpc_timeout,
                    )
                except WorkerUnavailable as exc:
                    last_error = exc
                    if breaker.record_failure(handle.epoch):
                        self.counters["breaker_opens"] += 1
                        obs.inc("cluster_circuit_open_total")
                        logger.warning(
                            "circuit opened for worker %d (epoch %d)",
                            worker_id, handle.epoch,
                        )
                    continue
                breaker.record_success(handle.epoch)
                if nth > 0:
                    self.counters["failovers"] += 1
                    obs.inc("cluster_failovers_total")
                return values
        raise last_error if last_error is not None else WorkerUnavailable(
            f"no servable replica for range {rid} of {route.name!r} "
            f"(owners {owners})"
        )

    def _degraded_corners(self, name: str,
                          points: Sequence[Tuple[int, int]]) -> List[Any]:
        """Answer corners from the authoritative oracle — slow, never wrong."""
        self.counters["degraded"] += 1
        obs.inc("cluster_degraded_total")
        logger.warning(
            "degraded mode: serving %d corner(s) of %r from the local oracle",
            len(points), name,
        )
        ds = self.checkpoints.dataset(name)
        with ds.lock:
            return [ds.values.sat_at(r, c) for (r, c) in points]

    # -- plumbing -------------------------------------------------------------

    def _route(self, name: str) -> _DatasetRoute:
        route = self._routes.get(name)
        if route is None:
            self.checkpoints.dataset(name)  # raises UnknownDataset
            raise ConfigurationError(
                f"dataset {name!r} is registered but has no placement — "
                f"ingest it through the router"
            )
        return route

    def stats(self) -> Dict[str, Any]:
        return {
            **self.counters,
            "inflight": self._inflight,
            "breakers": {
                w: b.state for w, b in enumerate(self.breakers)
            },
            "supervisor": self.supervisor.stats(),
            "checkpoints": self.checkpoints.stats(),
        }

    def close(self) -> None:
        self.supervisor.stop()


def _check_rect(shape: Tuple[int, int], top, left, bottom, right) -> None:
    rows, cols = shape
    if not (0 <= top <= bottom < rows and 0 <= left <= right < cols):
        raise ShapeError(
            f"rectangle ({top},{left})-({bottom},{right}) outside dataset "
            f"of shape {shape}"
        )
