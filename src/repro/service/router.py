"""Shard routing with failover, circuit breaking, and graceful degradation.

The :class:`ShardRouter` is the cluster's front door. It owns *policy*:
where each dataset's tile ranges live (contiguous row-major placement,
primary + replica), which worker a corner lookup should try first, when
to stop trying a flapping worker (per-worker circuit breaker), and what
to do when every replica of a range is dark (degrade to the local
authoritative oracle — slower, never wrong). Mechanism — processes,
heartbeats, restarts, checkpoints — lives in
:mod:`repro.service.cluster`.

Query path: a region sum is at most four corner evaluations of the
global SAT (the 2R1W decomposition's O(1) serving guarantee). Each
corner maps to one tile, hence one range, hence an ordered candidate
list ``[primary, replica, ...]``. The router tries candidates with
closed breakers first, laying :class:`~repro.util.backoff.ExponentialBackoff`
pauses between attempts; a :class:`~repro.errors.WorkerUnavailable` from
the supervisor records a breaker failure and moves on. The four corner
values are stitched with the same inclusion–exclusion, in the same
order, as the single-store :func:`repro.service.queries.region_sum`, so a
clustered answer is bit-identical to the local one no matter which
replica served each corner.

Admission control mirrors :class:`~repro.service.server.SATServer`:
requests beyond ``max_inflight`` are shed with
:class:`~repro.errors.Overloaded` at submission, and a request whose
deadline has passed gets :class:`~repro.errors.DeadlineExceeded` before
any worker is bothered.

Throughput comes from amortizing the round trip, the latency-``l`` term
of the paper's ``C/w + S + (B+1)l`` cost model, the same way the 2R1W
kernels amortize global-memory access:

* **Coalescing** — concurrent corner lookups headed for the same tile
  range merge into one multi-point RPC (leader/follower per range: the
  first arrival flushes immediately, arrivals during an in-flight RPC
  accumulate and ride the next one, so an idle router adds zero latency).
* **Pipelining** — a query whose corners span several ranges fans out to
  all owners concurrently instead of serializing the groups; results are
  stitched in the same deterministic order either way.
* **Fast path** — a rectangle whose ≤ 4 corners land in one range skips
  the fan-out machinery for a single round trip.
* The hot transport underneath is the supervisor's shared-memory
  :class:`~repro.service.cluster.LookupRing` (pipe fallback preserved).

Every path stitches with the canonical inclusion–exclusion order, so all
answers stay bit-identical to the local store.
"""

from __future__ import annotations

import logging
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import (
    ConfigurationError,
    DeadlineExceeded,
    Overloaded,
    ShapeError,
    WorkerUnavailable,
)
from ..obs import runtime as obs
from ..util.backoff import Clock, ExponentialBackoff, SystemClock
from .cluster import ALIVE, CheckpointStore, WorkerSupervisor
from .queries import region_sums as _local_region_sums
from .store import DEFAULT_TILE, Dataset
from .update import point_update, region_add, region_update

__all__ = ["CircuitBreaker", "ShardRouter", "make_placement"]

logger = logging.getLogger("repro.service.router")


# =============================================================================
# Placement
# =============================================================================


def make_placement(nb_tiles: int, n_workers: int,
                   replicas: int = 2) -> List[Tuple[Tuple[int, int], List[int]]]:
    """Contiguous tile-range shards with primary + replica copies.

    Splits ``nb_tiles`` row-major linearized tile indices into
    ``min(n_workers, nb_tiles)`` contiguous ranges (balanced to within
    one tile) and assigns range ``w`` to workers ``[w, w+1, ...] mod N``
    — primary first, then ``replicas - 1`` successors, so losing any one
    worker leaves every range with a live copy and a restarted worker's
    shards are disjoint contiguous blocks (cheap to re-hydrate).

    Returns ``[((lo, hi), [worker, ...]), ...]`` indexed by range id.
    """
    if n_workers < 1:
        raise ConfigurationError(f"placement needs >= 1 worker, got {n_workers}")
    if replicas < 1:
        raise ConfigurationError(f"placement needs >= 1 replica, got {replicas}")
    n_ranges = min(n_workers, nb_tiles)
    copies = min(replicas, n_workers)
    out: List[Tuple[Tuple[int, int], List[int]]] = []
    for w in range(n_ranges):
        lo = (w * nb_tiles) // n_ranges
        hi = ((w + 1) * nb_tiles) // n_ranges
        owners = [(w + k) % n_workers for k in range(copies)]
        out.append(((lo, hi), owners))
    return out


# =============================================================================
# Circuit breaker
# =============================================================================


@dataclass
class CircuitBreaker:
    """Per-worker breaker: open after K consecutive failures, half-open probe.

    Closed (healthy) → ``failures_to_open`` consecutive failures → open
    (skip this worker) → after ``cooldown`` seconds → half-open (admit
    *one* probe; success closes, failure re-opens). A worker restart
    (visible as a new supervisor epoch) closes the breaker immediately —
    the restarted process shares nothing with the one that failed.
    """

    failures_to_open: int = 3
    cooldown: float = 1.0
    clock: Clock = field(default_factory=SystemClock)
    failures: int = 0
    opened_at: Optional[float] = None
    half_open: bool = False
    epoch_seen: int = -1
    lock: threading.Lock = field(default_factory=threading.Lock)

    def allows(self, epoch: int) -> bool:
        """May we send this worker a request right now?"""
        with self.lock:
            if epoch != self.epoch_seen:  # restarted since we tripped
                self._reset(epoch)
            if self.opened_at is None:
                return True
            if self.half_open:  # a probe is already in flight
                return False
            if self.clock.now() - self.opened_at >= self.cooldown:
                self.half_open = True  # this caller is the probe
                return True
            return False

    def record_success(self, epoch: int) -> None:
        with self.lock:
            self._reset(epoch)

    def record_failure(self, epoch: int) -> bool:
        """Record a failure; returns True if this transition *opened* it."""
        with self.lock:
            if epoch != self.epoch_seen:
                self._reset(epoch)
            self.failures += 1
            if self.half_open:  # failed probe: straight back to open
                self.half_open = False
                self.opened_at = self.clock.now()
                return False
            if self.opened_at is None and self.failures >= self.failures_to_open:
                self.opened_at = self.clock.now()
                return True
            return False

    def _reset(self, epoch: int) -> None:
        self.failures = 0
        self.opened_at = None
        self.half_open = False
        self.epoch_seen = epoch

    @property
    def state(self) -> str:
        with self.lock:
            if self.opened_at is None:
                return "closed"
            return "half-open" if self.half_open else "open"


# =============================================================================
# Router
# =============================================================================


class _DatasetRoute:
    """Routing state for one dataset: its placement and geometry."""

    __slots__ = ("name", "tile", "nb_c", "placement", "_los", "_hi")

    def __init__(self, name: str, tile: int, nb_c: int,
                 placement: List[Tuple[Tuple[int, int], List[int]]]):
        self.name = name
        self.tile = tile
        self.nb_c = nb_c
        self.placement = placement
        # Ranges are contiguous and sorted, so a searchsorted over the
        # lower edges resolves a whole batch of tiles in one shot.
        self._los = np.array([lo for (lo, _hi), _ in placement], dtype=np.int64)
        self._hi = placement[-1][0][1] if placement else 0

    def range_of(self, lin: int) -> int:
        for rid, ((lo, hi), _owners) in enumerate(self.placement):
            if lo <= lin < hi:
                return rid
        raise ShapeError(f"tile {lin} outside every range of {self.name!r}")

    def range_of_many(self, lins: np.ndarray) -> np.ndarray:
        if len(lins) and (lins.min() < 0 or lins.max() >= self._hi):
            bad = int(lins[(lins < 0) | (lins >= self._hi)][0])
            raise ShapeError(f"tile {bad} outside every range of {self.name!r}")
        return np.searchsorted(self._los, lins, side="right") - 1


class _PendingLookup:
    """One caller's share of a coalesced per-range lookup batch."""

    __slots__ = ("points", "deadline", "values", "error", "done")

    def __init__(self, points: np.ndarray, deadline: Optional[float]):
        self.points = points
        self.deadline = deadline
        self.values: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None
        self.done = False


class _RangeChannel:
    """Coalescing point for one ``(dataset, range)``: leader + followers.

    At most one RPC per channel is in flight (``busy``); arrivals during
    that flight queue in ``pending`` and are swept into the next batch by
    whoever becomes leader. The first arrival on an idle channel leads
    immediately, so coalescing adds no latency when there is no
    concurrency to exploit.
    """

    __slots__ = ("lock", "cond", "busy", "pending")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.cond = threading.Condition(self.lock)
        self.busy = False
        self.pending: List[_PendingLookup] = []


class ShardRouter:
    """Front end of the sharded cluster: ingest, update fan-out, queries.

    Writes go through the *authoritative* dataset first (the ordinary
    bit-exact incremental-update paths), then fan the changed shard state
    out to every live worker under the supervisor's topology lock — a
    worker therefore either holds state at the authoritative version or
    is down and will re-hydrate to it. Reads fan ≤ 4 corner lookups out
    to shards and stitch; failures fail over primary → replica with
    backoff, breakers skip flapping workers, and a range with no
    servable replica degrades the *whole query* to the authoritative
    oracle (counted, logged — degraded mode is loud, never silent).
    """

    def __init__(
        self,
        supervisor: WorkerSupervisor,
        *,
        replicas: int = 2,
        max_attempts: int = 3,
        backoff: Optional[ExponentialBackoff] = None,
        clock: Optional[Clock] = None,
        max_inflight: int = 256,
        degrade: bool = True,
        rpc_timeout: float = 2.0,
        breaker_failures: int = 3,
        breaker_cooldown: float = 1.0,
        coalesce: bool = True,
        coalesce_window: float = 0.0,
        coalesce_max_points: int = 4096,
        pipeline: bool = True,
        fanout_threads: Optional[int] = None,
    ):
        if replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
        if max_attempts < 1:
            raise ConfigurationError(f"max_attempts must be >= 1, got {max_attempts}")
        if coalesce_window < 0:
            raise ConfigurationError(
                f"coalesce_window must be >= 0, got {coalesce_window}"
            )
        if coalesce_max_points < 1:
            raise ConfigurationError(
                f"coalesce_max_points must be >= 1, got {coalesce_max_points}"
            )
        self.supervisor = supervisor
        self.checkpoints: CheckpointStore = supervisor.checkpoints
        self.replicas = replicas
        self.max_attempts = max_attempts
        self.backoff = backoff or ExponentialBackoff(base=0.005, factor=2.0, cap=0.05)
        self.clock = clock if clock is not None else SystemClock()
        self.max_inflight = max_inflight
        self.degrade = degrade
        self.rpc_timeout = rpc_timeout
        self.breakers = [
            CircuitBreaker(
                failures_to_open=breaker_failures,
                cooldown=breaker_cooldown,
                clock=self.clock,
            )
            for _ in range(supervisor.workers)
        ]
        self.coalesce = coalesce
        self.coalesce_window = coalesce_window
        self.coalesce_max_points = coalesce_max_points
        self.pipeline = pipeline
        self.fanout_threads = (
            fanout_threads if fanout_threads is not None
            else max(4, 2 * supervisor.workers)
        )
        self._routes: Dict[str, _DatasetRoute] = {}
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._channels: Dict[Tuple[str, int], _RangeChannel] = {}
        self._channels_lock = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()
        self.counters: Dict[str, int] = {
            "requests": 0, "failovers": 0, "retries": 0, "degraded": 0,
            "shed": 0, "deadline_missed": 0, "breaker_opens": 0,
            "fast_path": 0, "coalesced_batches": 0, "coalesced_points": 0,
        }

    # -- ingest ---------------------------------------------------------------

    def ingest(self, name: str, matrix: np.ndarray, *,
               tile: int = DEFAULT_TILE) -> Dataset:
        """Build the dataset, register checkpoints, push shards to workers.

        The authoritative copy lives in the checkpoint store; each range's
        checkpoint is cut once and shipped to all of its owners (the same
        CRC-verified payload a post-crash re-hydration would load, so
        ingest exercises the recovery path on every run).
        """
        sup = self.supervisor
        ds = Dataset(name, matrix, tile)
        nb_tiles = ds.values.nb_r * ds.values.nb_c
        placement = make_placement(nb_tiles, sup.workers, self.replicas)
        route = _DatasetRoute(name, ds.values.t, ds.values.nb_c, placement)
        with sup.topology_lock:
            self.checkpoints.register(ds, [rng for rng, _ in placement])
            # Rebuild each worker's assignment list for this dataset.
            for worker_id, assigned in sup.assignments.items():
                sup.assignments[worker_id] = [
                    (n, r) for (n, r) in assigned if n != name
                ]
            fresh: set = set()
            for rid, (_rng, owners) in enumerate(placement):
                cp = self.checkpoints.payload_for(name, rid)
                for worker_id in owners:
                    sup.assignments[worker_id].append((name, rid))
                    if sup.handles[worker_id].state != ALIVE:
                        continue  # restart will re-hydrate from the checkpoint
                    try:
                        sup.load_shard(worker_id, name, cp,
                                       reset=worker_id not in fresh)
                        fresh.add(worker_id)
                    except WorkerUnavailable:
                        pass  # marked down; the monitor owns its recovery
            self._routes[name] = route
        obs.inc("cluster_ingests_total")
        return ds

    def drop(self, name: str) -> None:
        sup = self.supervisor
        with sup.topology_lock:
            self._routes.pop(name, None)
            self.checkpoints.drop(name)
            with self._channels_lock:
                for key in [k for k in self._channels if k[0] == name]:
                    del self._channels[key]
            for worker_id, assigned in sup.assignments.items():
                sup.assignments[worker_id] = [
                    (n, r) for (n, r) in assigned if n != name
                ]
                if sup.handles[worker_id].state == ALIVE:
                    try:
                        sup.rpc(worker_id, ("drop", name), timeout=self.rpc_timeout)
                    except WorkerUnavailable:
                        pass

    # -- updates --------------------------------------------------------------

    def update_point(self, name: str, r: int, c: int, *,
                     delta=None, value=None) -> None:
        ds = self.checkpoints.dataset(name)
        t = ds.values.t
        with self.supervisor.topology_lock:
            point_update(ds, r, c, delta=delta, value=value)
            self._push_delta(name, ds, r // t, c // t, r // t, c // t)

    def update_region(self, name: str, top: int, left: int,
                      values: np.ndarray) -> None:
        self._region_write(name, top, left, np.asarray(values), region_update)

    def add_region(self, name: str, top: int, left: int,
                   delta: np.ndarray) -> None:
        self._region_write(name, top, left, np.asarray(delta), region_add)

    def _region_write(self, name, top, left, block, apply_fn) -> None:
        ds = self.checkpoints.dataset(name)
        t = ds.values.t
        bottom = top + block.shape[0] - 1
        right = left + block.shape[1] - 1
        with self.supervisor.topology_lock:
            apply_fn(ds, top, left, block)
            self._push_delta(name, ds, top // t, left // t, bottom // t, right // t)

    def _push_delta(self, name: str, ds: Dataset,
                    i0: int, j0: int, i1: int, j1: int) -> None:
        """Fan an update's changed shard state out to every live owner.

        Caller holds the topology lock (so this cannot interleave with a
        re-hydration) and has already applied the update to the
        authoritative dataset. A push failure marks the worker down — it
        will re-hydrate to the current version, so a missed delta can
        never leave a stale replica serving.
        """
        components = ds.values.shard_delta(i0, j0, i1, j1)
        version = ds.version
        sup = self.supervisor
        pushed = 0
        for worker_id, assigned in sup.assignments.items():
            if not any(n == name for (n, _r) in assigned):
                continue
            if sup.handles[worker_id].state != ALIVE:
                continue
            try:
                sup.rpc(worker_id, ("delta", name, version, components),
                        timeout=self.rpc_timeout)
                pushed += 1
            except WorkerUnavailable:
                logger.warning(
                    "delta push for %r v%d lost worker %d; it will re-hydrate",
                    name, version, worker_id,
                )
        obs.inc("cluster_delta_pushes_total", pushed)

    # -- queries --------------------------------------------------------------

    def region_sum(self, name: str, top: int, left: int, bottom: int,
                   right: int, *, timeout: Optional[float] = None):
        """Rectangle sum served from the shards, bit-identical to local.

        Sheds with :class:`Overloaded` beyond ``max_inflight``; honors
        ``timeout`` (seconds from now) with :class:`DeadlineExceeded`
        both at admission and between failover attempts. If any corner's
        range has no servable replica the whole query degrades to the
        authoritative oracle (when ``degrade=True``) or raises the last
        :class:`WorkerUnavailable`.
        """
        route = self._route(name)
        rows_cols = self.checkpoints.dataset(name).shape
        _check_rect(rows_cols, top, left, bottom, right)
        deadline = None if timeout is None else self.clock.now() + timeout
        with self._inflight_lock:
            if self._inflight >= self.max_inflight:
                self.counters["shed"] += 1
                obs.inc("cluster_shed_total")
                raise Overloaded(
                    f"cluster router at max_inflight={self.max_inflight}; "
                    f"retry with backoff"
                )
            self._inflight += 1
        try:
            self.counters["requests"] += 1
            obs.inc("cluster_requests_total", kind="region_sum")
            if deadline is not None and self.clock.now() > deadline:
                self.counters["deadline_missed"] += 1
                obs.inc("cluster_deadline_missed_total")
                raise DeadlineExceeded(
                    f"deadline passed before dispatch of region_sum on {name!r}"
                )
            # The four SAT corners, in the canonical stitch order of
            # queries.region_sum (term order fixes the float rounding).
            corners: List[Tuple[Tuple[int, int], int]] = [((bottom, right), +1)]
            if top > 0:
                corners.append(((top - 1, right), -1))
            if left > 0:
                corners.append(((bottom, left - 1), -1))
            if top > 0 and left > 0:
                corners.append(((top - 1, left - 1), +1))
            values = self._lookup_corners(
                route, [pt for pt, _sign in corners], deadline
            )
            total = values[0]
            for (_pt, sign), value in zip(corners[1:], values[1:]):
                total = total + value if sign > 0 else total - value
            return total
        finally:
            with self._inflight_lock:
                self._inflight -= 1

    def region_sums(self, name: str, rects: np.ndarray, *,
                    timeout: Optional[float] = None) -> np.ndarray:
        """Vectorized rectangle-sum batch served from the shards.

        Rows of ``rects`` are ``(top, left, bottom, right)`` inclusive —
        the same contract, validation, and (bit-identical) stitch as the
        local :func:`repro.service.queries.region_sums`. All 4k corners
        ship as one coalesced multi-point lookup per owning range, ranges
        in parallel, so the round-trip cost is amortized over the whole
        batch instead of paid per rectangle.
        """
        route = self._route(name)
        ds = self.checkpoints.dataset(name)
        rects = np.asarray(rects, dtype=np.int64)
        if rects.ndim != 2 or rects.shape[1] != 4:
            raise ShapeError(f"rects must have shape (k, 4), got {rects.shape}")
        top, left, bottom, right = rects.T
        rows, cols = ds.shape
        if (
            (top < 0).any() or (left < 0).any()
            or (top > bottom).any() or (left > right).any()
            or (bottom >= rows).any() or (right >= cols).any()
        ):
            raise ShapeError("some rectangles fall outside the dataset")
        k = len(rects)
        if k == 0:
            return np.zeros(0, dtype=ds.values.dtype)
        deadline = None if timeout is None else self.clock.now() + timeout
        with self._inflight_lock:
            if self._inflight >= self.max_inflight:
                self.counters["shed"] += 1
                obs.inc("cluster_shed_total")
                raise Overloaded(
                    f"cluster router at max_inflight={self.max_inflight}; "
                    f"retry with backoff"
                )
            self._inflight += 1
        try:
            self.counters["requests"] += k
            obs.inc("cluster_requests_total", k, kind="region_sums")
            if deadline is not None and self.clock.now() > deadline:
                self.counters["deadline_missed"] += 1
                obs.inc("cluster_deadline_missed_total")
                raise DeadlineExceeded(
                    f"deadline passed before dispatch of region_sums on {name!r}"
                )
            # All four corner vectors at once; negative indices are the
            # branch-free zeros of sat_at_many, applied router-side.
            corner_r = np.concatenate([bottom, top - 1, bottom, top - 1])
            corner_c = np.concatenate([right, right, left - 1, left - 1])
            valid = (corner_r >= 0) & (corner_c >= 0)
            pts = np.stack([corner_r[valid], corner_c[valid]], axis=1)
            lins = (pts[:, 0] // route.tile) * route.nb_c + (pts[:, 1] // route.tile)
            rids = route.range_of_many(lins)
            unique = np.unique(rids)
            idx_groups = [(int(rid), np.nonzero(rids == rid)[0]) for rid in unique]
            if len(idx_groups) == 1:
                self.counters["fast_path"] += 1
                obs.inc("cluster_fast_path_total")
            try:
                results = self._dispatch_groups(
                    route, [(rid, pts[idxs]) for rid, idxs in idx_groups],
                    deadline,
                )
            except WorkerUnavailable:
                if not self.degrade:
                    raise
                return self._degraded_batch(name, rects)
            served = np.zeros(len(pts), dtype=ds.values.dtype)
            for (_rid, idxs), values in zip(idx_groups, results):
                served[idxs] = np.asarray(values)
            vals = np.zeros(4 * k, dtype=ds.values.dtype)
            vals[valid] = served
            v = vals.reshape(4, k)
            # Same elementwise term order as queries.region_sums.
            return v[0] - v[1] - v[2] + v[3]
        finally:
            with self._inflight_lock:
                self._inflight -= 1

    def lookup(self, name: str, r: int, c: int, *,
               timeout: Optional[float] = None):
        """One global-SAT point ``F(r, c)`` served from the shards."""
        route = self._route(name)
        rows, cols = self.checkpoints.dataset(name).shape
        if not (0 <= r < rows and 0 <= c < cols):
            raise ShapeError(
                f"point ({r}, {c}) outside dataset of shape ({rows}, {cols})"
            )
        deadline = None if timeout is None else self.clock.now() + timeout
        with self._inflight_lock:
            if self._inflight >= self.max_inflight:
                self.counters["shed"] += 1
                obs.inc("cluster_shed_total")
                raise Overloaded(
                    f"cluster router at max_inflight={self.max_inflight}; "
                    f"retry with backoff"
                )
            self._inflight += 1
        try:
            self.counters["requests"] += 1
            obs.inc("cluster_requests_total", kind="lookup")
            if deadline is not None and self.clock.now() > deadline:
                self.counters["deadline_missed"] += 1
                obs.inc("cluster_deadline_missed_total")
                raise DeadlineExceeded(
                    f"deadline passed before dispatch of lookup on {name!r}"
                )
            return self._lookup_corners(route, [(r, c)], deadline)[0]
        finally:
            with self._inflight_lock:
                self._inflight -= 1

    # -- lookup machinery -----------------------------------------------------

    def _lookup_corners(self, route: _DatasetRoute,
                        points: Sequence[Tuple[int, int]],
                        deadline: Optional[float]) -> List[Any]:
        """Evaluate SAT corners via the shards, grouped by range.

        A single-range batch (the overwhelmingly common case for one
        rectangle: all ≤ 4 corners in one tile range) takes the fast
        path — one coalesced round trip, no fan-out machinery. Any
        unservable group degrades the *whole* call — partial mixing of
        shard answers and oracle answers is pointless once the oracle
        (which can answer every corner) has to run anyway.
        """
        pts = np.asarray(points, dtype=np.int64).reshape(-1, 2)
        if len(pts) <= 8:
            # A single rectangle's corners: plain-Python grouping beats
            # the vectorized unique/nonzero machinery at this size.
            grouped: Dict[int, List[int]] = {}
            tile, nb_c = route.tile, route.nb_c
            for idx, (r, c) in enumerate(points):
                lin = (int(r) // tile) * nb_c + (int(c) // tile)
                grouped.setdefault(route.range_of(lin), []).append(idx)
            idx_groups = list(grouped.items())
        else:
            lins = (pts[:, 0] // route.tile) * route.nb_c + (pts[:, 1] // route.tile)
            rids = route.range_of_many(lins)
            unique = np.unique(rids)
            idx_groups = [
                (int(rid), np.nonzero(rids == rid)[0]) for rid in unique
            ]
        try:
            if len(idx_groups) == 1:
                self.counters["fast_path"] += 1
                obs.inc("cluster_fast_path_total")
                values = self._coalesced_lookup(
                    route, idx_groups[0][0], pts, deadline
                )
                return list(values)
            results = self._dispatch_groups(
                route, [(rid, pts[idxs]) for rid, idxs in idx_groups], deadline
            )
        except WorkerUnavailable:
            if not self.degrade:
                raise
            return self._degraded_corners(
                route.name, [(int(r), int(c)) for r, c in pts]
            )
        out: List[Any] = [None] * len(pts)
        for (_rid, idxs), values in zip(idx_groups, results):
            for i, v in zip(idxs, values):
                out[int(i)] = v
        return out

    def _dispatch_groups(self, route: _DatasetRoute,
                         groups: List[Tuple[int, np.ndarray]],
                         deadline: Optional[float]) -> List[np.ndarray]:
        """One coalesced lookup per range — pipelined when there are several.

        Instead of walking corner groups serially (paying one worker
        round trip after another), every owning range's RPC is in flight
        at once; the caller stitches results in its own deterministic
        order, so pipelining changes latency, never values. Deadline
        failures outrank replica exhaustion when both happen.
        """
        if len(groups) == 1 or not self.pipeline:
            return [
                self._coalesced_lookup(route, rid, pts, deadline)
                for rid, pts in groups
            ]
        # The calling thread leads the first group itself while the rest
        # are in flight on the pool — one fewer thread handoff per call,
        # and the same wall clock as submitting everything.
        executor = self._fanout_executor()
        futures = [
            executor.submit(self._coalesced_lookup, route, rid, pts, deadline)
            for rid, pts in groups[1:]
        ]
        results: List[Any] = []
        errors: List[BaseException] = []
        try:
            results.append(
                self._coalesced_lookup(route, groups[0][0], groups[0][1], deadline)
            )
        except BaseException as exc:  # noqa: BLE001 — collected, re-raised
            results.append(None)
            errors.append(exc)
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 — collected, re-raised
                results.append(None)
                errors.append(exc)
        if errors:
            for exc in errors:
                if isinstance(exc, DeadlineExceeded):
                    raise exc
            for exc in errors:
                if isinstance(exc, WorkerUnavailable):
                    raise exc
            raise errors[0]
        return results

    def _coalesced_lookup(self, route: _DatasetRoute, rid: int,
                          points: np.ndarray,
                          deadline: Optional[float]) -> np.ndarray:
        """Point lookups on one range, merged across concurrent callers.

        Leader/follower per range channel: the first caller on an idle
        channel becomes leader and flushes immediately (zero added
        latency when idle); callers arriving while the leader's RPC is in
        flight queue up and are swept into the next batch — one worker
        round trip per *wave* of concurrent queries instead of one per
        query. Values come back in request order per caller, so
        coalescing is invisible to the stitch.
        """
        if not self.coalesce:
            return self._lookup_on_range(route, rid, points, deadline)
        ch = self._channel(route.name, rid)
        me = _PendingLookup(points, deadline)
        batch: Optional[List[_PendingLookup]] = None
        with ch.cond:
            ch.pending.append(me)
            while True:
                if me.done:
                    break
                if not ch.busy:
                    ch.busy = True
                    if self.coalesce_window > 0 and len(ch.pending) == 1:
                        # Optional batching window: hold leadership briefly
                        # to let concurrent callers pile on.
                        ch.cond.wait(self.coalesce_window)
                    batch = self._take_batch(ch, me)
                    break
                # A caller still queued enforces its own deadline; one
                # already swept into a batch is resolved by its leader
                # (who serves under the batch's earliest deadline).
                if (me.deadline is not None and me in ch.pending
                        and self.clock.now() > me.deadline):
                    ch.pending.remove(me)
                    self.counters["deadline_missed"] += 1
                    obs.inc("cluster_deadline_missed_total")
                    raise DeadlineExceeded(
                        f"deadline passed while queued for range {rid} "
                        f"of {route.name!r}"
                    )
                ch.cond.wait(0.05)
        if batch is None:  # a leader served us while we waited
            if me.error is not None:
                raise me.error
            assert me.values is not None
            return me.values
        if len(batch) > 1:
            n_points = sum(len(p.points) for p in batch)
            self.counters["coalesced_batches"] += 1
            self.counters["coalesced_points"] += n_points
            obs.inc("cluster_coalesced_batches_total")
            obs.inc("cluster_coalesced_points_total", n_points)
        self._serve_batch(route, rid, ch, batch)
        if me.error is not None:
            raise me.error
        assert me.values is not None
        return me.values

    def _serve_batch(self, route: _DatasetRoute, rid: int,
                     ch: _RangeChannel, batch: List[_PendingLookup]) -> None:
        """Leader duty: serve the swept batch under per-caller deadlines.

        The RPC runs under the batch's *earliest* deadline, so a caller
        with a short timeout never waits out another caller's full retry
        ladder. When that earliest deadline fires, only the callers whose
        own deadline has actually passed are resolved with
        :class:`DeadlineExceeded`; the remainder retries under the
        next-earliest deadline. Each round resolves at least one caller,
        so the loop terminates.
        """
        remaining = batch
        try:
            while remaining:
                deadlines = [p.deadline for p in remaining if p.deadline is not None]
                batch_deadline = min(deadlines) if deadlines else None
                merged = (
                    remaining[0].points if len(remaining) == 1
                    else np.concatenate([p.points for p in remaining])
                )
                try:
                    values = self._lookup_on_range(
                        route, rid, merged, batch_deadline
                    )
                except DeadlineExceeded as exc:
                    now = self.clock.now()
                    expired = [
                        p for p in remaining
                        if p.deadline is not None and now > p.deadline
                    ]
                    if not expired:  # at minimum, the earliest holder
                        expired = [
                            p for p in remaining if p.deadline == batch_deadline
                        ]
                    self._resolve_pending(ch, expired, error=exc)
                    remaining = [p for p in remaining if p not in expired]
                except BaseException as exc:  # noqa: BLE001 — fanned out
                    self._resolve_pending(ch, remaining, error=exc)
                    remaining = []
                else:
                    self._resolve_pending(ch, remaining, values=values)
                    remaining = []
        finally:
            with ch.cond:
                ch.busy = False
                ch.cond.notify_all()

    @staticmethod
    def _resolve_pending(ch: _RangeChannel, batch: List[_PendingLookup],
                         values: Optional[np.ndarray] = None,
                         error: Optional[BaseException] = None) -> None:
        with ch.cond:
            offset = 0
            for p in batch:
                n = len(p.points)
                if error is not None:
                    p.error = error
                else:
                    assert values is not None
                    p.values = values[offset:offset + n]
                offset += n
                p.done = True
            ch.cond.notify_all()

    def _take_batch(self, ch: _RangeChannel,
                    me: _PendingLookup) -> List[_PendingLookup]:
        """Sweep pending callers into the leader's batch (size-capped)."""
        ch.pending.remove(me)
        batch = [me]
        budget = self.coalesce_max_points - len(me.points)
        while ch.pending and len(ch.pending[0].points) <= budget:
            p = ch.pending.pop(0)
            batch.append(p)
            budget -= len(p.points)
        return batch

    def _channel(self, name: str, rid: int) -> _RangeChannel:
        key = (name, rid)
        ch = self._channels.get(key)
        if ch is None:
            with self._channels_lock:
                ch = self._channels.setdefault(key, _RangeChannel())
        return ch

    def _fanout_executor(self) -> ThreadPoolExecutor:
        executor = self._executor
        if executor is None:
            with self._executor_lock:
                executor = self._executor
                if executor is None:
                    executor = ThreadPoolExecutor(
                        max_workers=self.fanout_threads,
                        thread_name_prefix="repro-router-fanout",
                    )
                    self._executor = executor
        return executor

    def _lookup_on_range(self, route: _DatasetRoute, rid: int,
                         points: np.ndarray,
                         deadline: Optional[float]) -> np.ndarray:
        """Try a range's owners primary-first with breaker gating + backoff."""
        sup = self.supervisor
        owners = route.placement[rid][1]
        last_error: Optional[WorkerUnavailable] = None
        for attempt in range(self.max_attempts):
            if attempt > 0:
                self.counters["retries"] += 1
                obs.inc("cluster_retries_total")
                self.backoff.pause(self.clock, attempt - 1)
            if deadline is not None and self.clock.now() > deadline:
                self.counters["deadline_missed"] += 1
                obs.inc("cluster_deadline_missed_total")
                raise DeadlineExceeded(
                    f"deadline passed after {attempt} attempt(s) on range {rid} "
                    f"of {route.name!r}"
                )
            for nth, worker_id in enumerate(owners):
                handle = sup.handles[worker_id]
                if handle.state != ALIVE:
                    continue
                breaker = self.breakers[worker_id]
                if not breaker.allows(handle.epoch):
                    continue
                try:
                    values, _version = sup.rpc(
                        worker_id, ("lookup", route.name, points),
                        timeout=self.rpc_timeout,
                    )
                except WorkerUnavailable as exc:
                    last_error = exc
                    if breaker.record_failure(handle.epoch):
                        self.counters["breaker_opens"] += 1
                        obs.inc("cluster_circuit_open_total")
                        logger.warning(
                            "circuit opened for worker %d (epoch %d)",
                            worker_id, handle.epoch,
                        )
                    continue
                breaker.record_success(handle.epoch)
                if nth > 0:
                    self.counters["failovers"] += 1
                    obs.inc("cluster_failovers_total")
                return values
        raise last_error if last_error is not None else WorkerUnavailable(
            f"no servable replica for range {rid} of {route.name!r} "
            f"(owners {owners})"
        )

    def _degraded_corners(self, name: str,
                          points: Sequence[Tuple[int, int]]) -> List[Any]:
        """Answer corners from the authoritative oracle — slow, never wrong."""
        self.counters["degraded"] += 1
        obs.inc("cluster_degraded_total")
        logger.warning(
            "degraded mode: serving %d corner(s) of %r from the local oracle",
            len(points), name,
        )
        ds = self.checkpoints.dataset(name)
        with ds.lock:
            return [ds.values.sat_at(r, c) for (r, c) in points]

    def _degraded_batch(self, name: str, rects: np.ndarray) -> np.ndarray:
        """Answer a rectangle batch from the authoritative oracle."""
        self.counters["degraded"] += 1
        obs.inc("cluster_degraded_total")
        logger.warning(
            "degraded mode: serving %d rectangle(s) of %r from the local oracle",
            len(rects), name,
        )
        ds = self.checkpoints.dataset(name)
        return _local_region_sums(ds, rects)

    # -- plumbing -------------------------------------------------------------

    def _route(self, name: str) -> _DatasetRoute:
        route = self._routes.get(name)
        if route is None:
            self.checkpoints.dataset(name)  # raises UnknownDataset
            raise ConfigurationError(
                f"dataset {name!r} is registered but has no placement — "
                f"ingest it through the router"
            )
        return route

    def stats(self) -> Dict[str, Any]:
        return {
            **self.counters,
            "inflight": self._inflight,
            "breakers": {
                w: b.state for w, b in enumerate(self.breakers)
            },
            "supervisor": self.supervisor.stats(),
            "checkpoints": self.checkpoints.stats(),
        }

    def close(self) -> None:
        executor = self._executor
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self.supervisor.stop()


def _check_rect(shape: Tuple[int, int], top, left, bottom, right) -> None:
    rows, cols = shape
    if not (0 <= top <= bottom < rows and 0 <= left <= right < cols):
        raise ShapeError(
            f"rectangle ({top},{left})-({bottom},{right}) outside dataset "
            f"of shape {shape}"
        )
