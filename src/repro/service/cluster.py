"""Supervised worker cluster for sharded SAT serving.

The paper's 2R1W decomposition gives every tile a self-contained serving
record — local SAT, two edge-prefix vectors, one corner scalar — so a
*contiguous range of row-major tile indices* is a natural shard: a worker
process holding that range answers the global SAT value ``F(r, c)`` for
any point inside its tiles with no other state. This module owns the
process side of that design; routing policy (placement, failover,
circuit breaking) lives in :mod:`repro.service.router`.

Three pieces:

* :class:`ShardWorkerState` — the worker-side state machine: install a
  CRC-verified shard checkpoint, apply update deltas, answer point
  lookups. It is transport-agnostic, so the same code runs inside a real
  worker process (``_worker_main``) and inline in the supervisor's
  process (``inline=True``), which is what the deterministic router
  tests drive.
* :class:`CheckpointStore` — the durable tier the cluster recovers from:
  the authoritative :class:`~repro.service.store.Dataset` per name plus
  lazily rebuilt, CRC-32-tagged serialized shard payloads (the same
  integrity idiom as the streaming layer's
  :class:`~repro.sat.out_of_core.StreamCheckpoint`). A restarted worker
  re-hydrates from here, and the router's degraded mode answers from the
  authoritative matrix when a whole range is dark.
* :class:`WorkerSupervisor` — owns the pool: spawn, heartbeat health
  checks, crash detection (a failed RPC *or* missed pings), automatic
  restart with :class:`~repro.util.backoff.ExponentialBackoff` pacing,
  and re-hydration of every shard the restarted worker is assigned.

Large shard payloads cross the process boundary through a
:mod:`multiprocessing.shared_memory` block (the
:mod:`repro.sat.batch` transport pattern: ship a name, not a pickle);
small ones ride inline. Either way the payload carries its CRC-32 and
the worker verifies before installing — a torn or corrupted checkpoint
is rejected with a typed error, never served.

Consistency contract: shard installs and update pushes are serialized by
the supervisor's topology lock, so a worker is only marked alive when
its state matches the authoritative version; queries never take that
lock (a mid-rehydration query simply fails over).
"""

from __future__ import annotations

import logging
import pickle
import threading
import zlib
from dataclasses import dataclass, field
from multiprocessing import get_context, resource_tracker, shared_memory
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError, CorruptionDetected, UnknownDataset, WorkerUnavailable
from ..obs import runtime as obs
from ..util.backoff import Clock, ExponentialBackoff, SystemClock
from .store import Dataset

__all__ = [
    "CheckpointStore",
    "ShardCheckpoint",
    "ShardWorkerState",
    "WorkerSupervisor",
]

logger = logging.getLogger("repro.service.cluster")

#: Payloads at or above this many serialized bytes travel via a
#: shared-memory block instead of the pipe (one copy, no pickle of the
#: bulk arrays through the connection buffer).
SHM_BLOB_THRESHOLD = 64 * 1024

#: Worker states, supervisor-side.
ALIVE = "alive"
DOWN = "down"
RESTARTING = "restarting"


# =============================================================================
# Worker side
# =============================================================================


@dataclass
class _ShardBlock:
    """One installed shard: per-tile serving state for lins ``[lo, hi)``."""

    lo: int
    hi: int
    local: np.ndarray   # (k, t, t)
    col: np.ndarray     # (k, t)
    row: np.ndarray     # (k, t)
    corner: np.ndarray  # (k,)


@dataclass
class _WorkerDataset:
    """A worker's view of one dataset: geometry + its installed shards."""

    t: int
    nb_c: int
    rows: int
    cols: int
    version: int
    blocks: Dict[int, _ShardBlock] = field(default_factory=dict)  # range_id ->


class ShardWorkerState:
    """The transport-agnostic worker state machine.

    ``handle(msg) -> reply`` implements the whole protocol; both the real
    process loop and the supervisor's inline mode call it. Messages are
    tuples ``(op, *args)``; replies are ``("ok", payload)`` or
    ``("error", detail)`` — a worker never lets an exception escape its
    loop (the supervisor treats a dead pipe, not a reply, as a crash).
    """

    def __init__(self, worker_id: int, epoch: int = 0):
        self.worker_id = worker_id
        self.epoch = epoch
        self.datasets: Dict[str, _WorkerDataset] = {}

    # -- protocol -------------------------------------------------------------

    def handle(self, msg: Tuple[Any, ...]) -> Tuple[Any, ...]:
        op = msg[0]
        try:
            if op == "ping":
                return ("ok", {
                    "worker": self.worker_id,
                    "epoch": self.epoch,
                    "datasets": {n: d.version for n, d in self.datasets.items()},
                })
            if op == "load":
                return self._load(*msg[1:])
            if op == "delta":
                return self._delta(*msg[1:])
            if op == "lookup":
                return self._lookup(*msg[1:])
            if op == "drop":
                self.datasets.pop(msg[1], None)
                return ("ok", None)
            return ("error", f"unknown op {op!r}")
        except Exception as exc:  # noqa: BLE001 — reply, don't die
            return ("error", f"{type(exc).__name__}: {exc}")

    def _load(self, name: str, meta: Dict[str, Any],
              transport: Tuple[Any, ...]) -> Tuple[Any, ...]:
        blob = _recv_blob(transport)
        crc = zlib.crc32(blob)
        if crc != meta["crc"]:
            return ("error",
                    f"shard checkpoint for {name!r} range {meta['range_id']} "
                    f"failed its CRC (expected {meta['crc']}, got {crc})")
        state = pickle.loads(blob)
        ds = self.datasets.get(name)
        if ds is None or meta["reset"]:
            ds = _WorkerDataset(
                t=meta["t"], nb_c=meta["nb_c"],
                rows=meta["rows"], cols=meta["cols"], version=meta["version"],
            )
            self.datasets[name] = ds
        ds.blocks[meta["range_id"]] = _ShardBlock(
            lo=state["lo"], hi=state["hi"], local=state["local"],
            col=state["col"], row=state["row"], corner=state["corner"],
        )
        ds.version = meta["version"]
        return ("ok", meta["version"])

    def _delta(self, name: str, version: int,
               components: Dict[str, Tuple[np.ndarray, np.ndarray]]) -> Tuple[Any, ...]:
        ds = self.datasets.get(name)
        if ds is None:
            return ("error", f"no dataset {name!r} installed on this worker")
        for block in ds.blocks.values():
            for comp, (lins, values) in components.items():
                mask = (lins >= block.lo) & (lins < block.hi)
                if not mask.any():
                    continue
                k = lins[mask] - block.lo
                getattr(block, comp)[k] = values[mask]
        ds.version = version
        return ("ok", version)

    def _lookup(self, name: str, points: List[Tuple[int, int]]) -> Tuple[Any, ...]:
        ds = self.datasets.get(name)
        if ds is None:
            return ("error", f"no dataset {name!r} installed on this worker")
        out = []
        for r, c in points:
            i_tile, i = divmod(r, ds.t)
            j_tile, j = divmod(c, ds.t)
            lin = i_tile * ds.nb_c + j_tile
            block = None
            for b in ds.blocks.values():
                if b.lo <= lin < b.hi:
                    block = b
                    break
            if block is None:
                return ("error",
                        f"tile {lin} of {name!r} is outside this worker's "
                        f"shards — routing bug or stale placement")
            k = lin - block.lo
            # Same addition order as TileAggregates.sat_at — the stitched
            # answer must be bit-identical to the single-store path.
            value = (block.local[k, i, j] + block.col[k, j]
                     + block.row[k, i] + block.corner[k])
            out.append(value.item())
        return ("ok", (out, ds.version))


def _worker_main(worker_id: int, epoch: int, conn) -> None:
    """Entry point of a shard worker process: recv → handle → send."""
    state = ShardWorkerState(worker_id, epoch)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if msg[0] == "shutdown":
            try:
                conn.send(("ok", None))
            except (BrokenPipeError, OSError):
                pass
            break
        try:
            conn.send(state.handle(msg))
        except (BrokenPipeError, OSError):
            break


# -- blob transport -----------------------------------------------------------


def _send_blob(blob: bytes) -> Tuple[Tuple[Any, ...], Optional[shared_memory.SharedMemory]]:
    """Pick a transport for ``blob``: inline bytes, or a shared block.

    Returns ``(transport, shm)``; the caller must ``close()``/``unlink()``
    the block (if any) once the receiver acknowledged.
    """
    if len(blob) < SHM_BLOB_THRESHOLD:
        return ("inline", blob), None
    shm = shared_memory.SharedMemory(create=True, size=len(blob))
    shm.buf[: len(blob)] = blob
    return ("shm", shm.name, len(blob)), shm


def _recv_blob(transport: Tuple[Any, ...]) -> bytes:
    """Materialize a blob from its transport descriptor."""
    if transport[0] == "inline":
        return transport[1]
    _, name, nbytes = transport
    shm = shared_memory.SharedMemory(name=name)
    try:
        return bytes(shm.buf[:nbytes])
    finally:
        shm.close()


# =============================================================================
# Checkpoint store (the durable tier)
# =============================================================================


@dataclass
class ShardCheckpoint:
    """One serialized shard at one dataset version, CRC-32 tagged."""

    range_id: int
    lo: int
    hi: int
    version: int
    blob: bytes
    crc: int


class _CheckpointEntry:
    __slots__ = ("dataset", "ranges", "checkpoints")

    def __init__(self, dataset: Dataset, ranges: List[Tuple[int, int]]):
        self.dataset = dataset
        self.ranges = ranges  # range_id -> (lo, hi)
        self.checkpoints: Dict[int, ShardCheckpoint] = {}


class CheckpointStore:
    """Authoritative datasets plus CRC-verified shard checkpoints.

    The store is what the cluster *recovers from*: ingest registers the
    dataset and its range decomposition here, updates mutate the
    authoritative copy (through the ordinary bit-exact incremental-update
    paths), and :meth:`payload_for` serves a serialized shard at the
    current version — rebuilt lazily, so steady-state updates never pay
    for checkpoints nobody is restoring.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, _CheckpointEntry] = {}
        self._lock = threading.RLock()
        self.rebuilds = 0

    def register(self, dataset: Dataset, ranges: List[Tuple[int, int]]) -> None:
        with self._lock:
            self._entries[dataset.name] = _CheckpointEntry(dataset, ranges)

    def drop(self, name: str) -> None:
        with self._lock:
            self._entries.pop(name, None)

    def names(self) -> List[str]:
        with self._lock:
            return list(self._entries)

    def dataset(self, name: str) -> Dataset:
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise UnknownDataset(
                f"no dataset named {name!r} is registered with the cluster "
                f"(held: {self.names() or 'none'})"
            )
        return entry.dataset

    def ranges(self, name: str) -> List[Tuple[int, int]]:
        self.dataset(name)  # raises UnknownDataset
        with self._lock:
            return list(self._entries[name].ranges)

    def payload_for(self, name: str, range_id: int) -> ShardCheckpoint:
        """The shard's checkpoint at the dataset's *current* version."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise UnknownDataset(f"no dataset named {name!r} is registered")
            ds = entry.dataset
            with ds.lock:
                version = ds.version
                cp = entry.checkpoints.get(range_id)
                if cp is not None and cp.version == version:
                    return cp
                lo, hi = entry.ranges[range_id]
                blob = pickle.dumps(
                    ds.values.shard_state(lo, hi), protocol=pickle.HIGHEST_PROTOCOL
                )
            cp = ShardCheckpoint(
                range_id=range_id, lo=lo, hi=hi, version=version,
                blob=blob, crc=zlib.crc32(blob),
            )
            entry.checkpoints[range_id] = cp
            self.rebuilds += 1
            obs.inc("cluster_checkpoints_built_total")
            obs.observe("cluster_checkpoint_bytes", len(blob))
            return cp

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "datasets": len(self._entries),
                "checkpoint_rebuilds": self.rebuilds,
                "checkpoint_bytes": sum(
                    len(cp.blob)
                    for e in self._entries.values()
                    for cp in e.checkpoints.values()
                ),
            }


# =============================================================================
# Supervisor
# =============================================================================


@dataclass
class WorkerHandle:
    """Supervisor-side record of one worker slot."""

    worker_id: int
    state: str = DOWN
    epoch: int = -1
    process: Any = None
    conn: Any = None
    inline_state: Optional[ShardWorkerState] = None
    lock: threading.Lock = field(default_factory=threading.Lock)
    missed_pings: int = 0
    lookups_served: int = 0
    restarts: int = 0


class WorkerSupervisor:
    """Owns a pool of shard workers: health, crashes, restart, rehydrate.

    ``inline=True`` swaps the worker processes for in-process
    :class:`ShardWorkerState` objects behind the same RPC seam — the
    deterministic mode the router unit tests (and any single-process
    deployment) use; a "crash" there is the supervisor dropping the
    worker's state object, which loses its shards exactly like a killed
    process does.

    Crash detection is two-pronged: any failed RPC marks the worker down
    immediately (the common case — the router trips over the corpse), and
    the heartbeat monitor catches workers that die while idle. Restarts
    re-hydrate every assigned shard from the :class:`CheckpointStore`
    (CRC-verified on install) under the topology lock, so a restarted
    worker is only marked alive with state at the authoritative version.
    """

    def __init__(
        self,
        workers: int = 4,
        *,
        checkpoints: Optional[CheckpointStore] = None,
        inline: bool = False,
        clock: Optional[Clock] = None,
        rpc_timeout: float = 5.0,
        heartbeat_interval: float = 0.1,
        heartbeat_misses: int = 3,
        auto_restart: bool = True,
        restart_backoff: Optional[ExponentialBackoff] = None,
        max_restart_attempts: int = 3,
    ):
        if workers < 1:
            raise ConfigurationError(f"cluster needs >= 1 worker, got {workers}")
        self.checkpoints = checkpoints if checkpoints is not None else CheckpointStore()
        self.inline = inline
        self.clock = clock if clock is not None else SystemClock()
        self.rpc_timeout = rpc_timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_misses = heartbeat_misses
        self.auto_restart = auto_restart
        self.restart_backoff = restart_backoff or ExponentialBackoff(
            base=0.01, factor=2.0, cap=0.25
        )
        self.max_restart_attempts = max_restart_attempts
        #: worker_id -> [(dataset, range_id), ...], maintained by the router.
        self.assignments: Dict[int, List[Tuple[str, int]]] = {
            w: [] for w in range(workers)
        }
        #: Serializes topology changes (ingest pushes, update pushes,
        #: rehydration) so a restarting worker cannot install a payload
        #: that an in-flight update has already superseded. Queries never
        #: take it.
        self.topology_lock = threading.RLock()
        self._ctx = get_context()
        if not inline:
            # Start the shared-memory resource tracker *before* forking any
            # worker. Forked workers then inherit it, so their attach-time
            # registrations dedupe against the sender's create-time one and
            # the single unlink() balances the books. A worker forked with
            # no tracker running would lazily start its own and warn at
            # exit about segments the sender already unlinked.
            resource_tracker.ensure_running()
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self.restarts_total = 0
        self.failures_total = 0
        self.handles = [WorkerHandle(worker_id=w) for w in range(workers)]
        for handle in self.handles:
            self._spawn(handle)

    # -- lifecycle ------------------------------------------------------------

    @property
    def workers(self) -> int:
        return len(self.handles)

    def handle(self, worker_id: int) -> WorkerHandle:
        return self.handles[worker_id]

    def _spawn(self, handle: WorkerHandle) -> None:
        """(Re)create the worker behind ``handle`` with a fresh epoch."""
        handle.epoch += 1
        handle.missed_pings = 0
        if self.inline:
            handle.inline_state = ShardWorkerState(handle.worker_id, handle.epoch)
        else:
            parent, child = self._ctx.Pipe()
            process = self._ctx.Process(
                target=_worker_main,
                args=(handle.worker_id, handle.epoch, child),
                daemon=True,
                name=f"repro-shard-worker-{handle.worker_id}",
            )
            process.start()
            child.close()
            handle.process = process
            handle.conn = parent
        handle.state = ALIVE

    def stop(self) -> None:
        """Stop the monitor and terminate every worker."""
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        for handle in self.handles:
            if self.inline:
                handle.inline_state = None
            else:
                with handle.lock:
                    if handle.conn is not None:
                        try:
                            handle.conn.send(("shutdown",))
                        except (BrokenPipeError, OSError):
                            pass
                        handle.conn.close()
                        handle.conn = None
                if handle.process is not None:
                    handle.process.join(timeout=2.0)
                    if handle.process.is_alive():
                        handle.process.kill()
                        handle.process.join(timeout=2.0)
                    handle.process = None
            handle.state = DOWN

    def __enter__(self) -> "WorkerSupervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- RPC ------------------------------------------------------------------

    def rpc(self, worker_id: int, msg: Tuple[Any, ...],
            timeout: Optional[float] = None) -> Any:
        """One request/reply exchange; failures mark the worker down.

        Raises :class:`~repro.errors.WorkerUnavailable` when the worker is
        not alive, its pipe breaks, the reply times out, or it answers
        with an error envelope. The caller (router) treats that as "this
        replica is gone": record the failure and try the next one.
        """
        handle = self.handles[worker_id]
        if handle.state != ALIVE:
            raise WorkerUnavailable(
                f"worker {worker_id} is {handle.state} (epoch {handle.epoch})"
            )
        timeout = self.rpc_timeout if timeout is None else timeout
        if self.inline:
            reply = self._rpc_inline(handle, msg)
        else:
            reply = self._rpc_process(handle, msg, timeout)
        if reply[0] != "ok":
            self._mark_down(handle, f"error reply: {reply[1]}")
            raise WorkerUnavailable(
                f"worker {worker_id} rejected {msg[0]!r}: {reply[1]}"
            )
        if msg[0] == "lookup":
            handle.lookups_served += 1
        return reply[1]

    def _rpc_inline(self, handle: WorkerHandle, msg) -> Tuple[Any, ...]:
        state = handle.inline_state
        if state is None:
            self._mark_down(handle, "inline state dropped")
            raise WorkerUnavailable(f"worker {handle.worker_id} has no state")
        return state.handle(msg)

    def _rpc_process(self, handle: WorkerHandle, msg, timeout: float):
        # No state check here: the public rpc() gates on ALIVE, while the
        # supervisor's own rehydration path talks to a RESTARTING worker.
        with handle.lock:
            conn = handle.conn
            if conn is None:
                raise WorkerUnavailable(
                    f"worker {handle.worker_id} has no connection "
                    f"(state {handle.state})"
                )
            try:
                conn.send(msg)
                if not conn.poll(timeout):
                    raise TimeoutError(
                        f"no reply to {msg[0]!r} within {timeout}s"
                    )
                return conn.recv()
            except (BrokenPipeError, ConnectionResetError, EOFError, OSError,
                    TimeoutError) as exc:
                self._mark_down(handle, f"{type(exc).__name__}: {exc}")
                raise WorkerUnavailable(
                    f"worker {handle.worker_id} (epoch {handle.epoch}) is "
                    f"unreachable: {exc}"
                ) from exc

    def _mark_down(self, handle: WorkerHandle, reason: str) -> None:
        if handle.state == ALIVE:
            handle.state = DOWN
            self.failures_total += 1
            obs.inc("cluster_worker_failures_total")
            logger.warning(
                "worker %d (epoch %d) marked down: %s",
                handle.worker_id, handle.epoch, reason,
            )

    # -- chaos ----------------------------------------------------------------

    def kill_worker(self, worker_id: int) -> None:
        """SIGKILL a worker (chaos hook) — no cleanup, like a real crash.

        The supervisor does *not* mark the worker down here: detection
        must go through the same paths a real crash exercises (a failed
        RPC or missed heartbeats).
        """
        handle = self.handles[worker_id]
        if self.inline:
            handle.inline_state = None  # its memory — and shards — are gone
        elif handle.process is not None:
            handle.process.kill()
            handle.process.join(timeout=2.0)
        obs.inc("cluster_workers_killed_total")
        logger.info("chaos: killed worker %d (epoch %d)", worker_id, handle.epoch)

    # -- recovery -------------------------------------------------------------

    def restart(self, worker_id: int) -> bool:
        """Restart a down worker and re-hydrate its shards; True on success."""
        handle = self.handles[worker_id]
        if handle.state == ALIVE:
            return True
        handle.state = RESTARTING
        for attempt in range(self.max_restart_attempts):
            try:
                self._teardown_process(handle)
                with self.topology_lock:
                    self._spawn(handle)
                    handle.state = RESTARTING  # not routable until hydrated
                    self._rehydrate(handle)
                    handle.state = ALIVE
                handle.restarts += 1
                self.restarts_total += 1
                obs.inc("cluster_worker_restarts_total")
                logger.info(
                    "worker %d restarted (epoch %d, %d shard(s) re-hydrated)",
                    worker_id, handle.epoch, len(self.assignments[worker_id]),
                )
                return True
            except (WorkerUnavailable, CorruptionDetected, OSError) as exc:
                logger.warning(
                    "restart attempt %d for worker %d failed: %s",
                    attempt, worker_id, exc,
                )
                self.restart_backoff.pause(self.clock, attempt)
        handle.state = DOWN
        return False

    def _teardown_process(self, handle: WorkerHandle) -> None:
        if self.inline:
            handle.inline_state = None
            return
        with handle.lock:
            if handle.conn is not None:
                handle.conn.close()
                handle.conn = None
        if handle.process is not None:
            if handle.process.is_alive():
                handle.process.kill()
            handle.process.join(timeout=2.0)
            handle.process = None

    def _rehydrate(self, handle: WorkerHandle) -> None:
        """Install every assigned shard from its current checkpoint."""
        seen: set = set()
        for name, range_id in self.assignments[handle.worker_id]:
            cp = self.checkpoints.payload_for(name, range_id)
            self.load_shard(handle.worker_id, name, cp, reset=name not in seen)
            seen.add(name)
            obs.inc("cluster_shards_rehydrated_total")

    def load_shard(self, worker_id: int, name: str, cp: ShardCheckpoint,
                   *, reset: bool = False) -> None:
        """Ship one checkpoint to a worker (shared-memory for big blobs).

        The worker verifies the CRC before installing; ``reset=True``
        drops any state the worker already holds for the dataset (the
        first shard of a rehydration, so a half-dead epoch's leftovers
        can never mix with fresh state).
        """
        ds = self.checkpoints.dataset(name)
        meta = {
            "range_id": cp.range_id, "version": cp.version, "crc": cp.crc,
            "t": ds.values.t, "nb_c": ds.values.nb_c,
            "rows": ds.values.rows, "cols": ds.values.cols,
            "reset": reset,
        }
        transport, shm = _send_blob(cp.blob)
        try:
            handle = self.handles[worker_id]
            state = handle.state
            if state != ALIVE and state != RESTARTING:
                raise WorkerUnavailable(f"worker {worker_id} is {state}")
            if self.inline:
                reply = self._rpc_inline(handle, ("load", name, meta, transport))
            else:
                reply = self._rpc_process(
                    handle, ("load", name, meta, transport), self.rpc_timeout
                )
            if reply[0] != "ok":
                self._mark_down(handle, f"load rejected: {reply[1]}")
                if "CRC" in str(reply[1]):
                    raise CorruptionDetected(str(reply[1]))
                raise WorkerUnavailable(
                    f"worker {worker_id} rejected shard load: {reply[1]}"
                )
        finally:
            if shm is not None:
                shm.close()
                shm.unlink()

    # -- health monitoring ----------------------------------------------------

    def start_monitor(self) -> None:
        """Run heartbeat checks (and auto-restarts) on a background thread."""
        if self._monitor is not None:
            return
        self._stop.clear()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-cluster-monitor", daemon=True
        )
        self._monitor.start()

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            try:
                self.check_health()
            except Exception:  # noqa: BLE001 — the monitor must survive
                logger.exception("cluster health check failed")

    def check_health(self) -> Dict[int, str]:
        """One health pass: ping alive workers, restart down ones."""
        for handle in self.handles:
            if handle.state == ALIVE:
                try:
                    self.rpc(handle.worker_id, ("ping",),
                             timeout=self.rpc_timeout)
                    handle.missed_pings = 0
                    obs.inc("cluster_heartbeats_total", result="ok")
                except WorkerUnavailable:
                    handle.missed_pings += 1
                    obs.inc("cluster_heartbeats_total", result="missed")
                    # rpc already marked it down on transport failure; a
                    # worker that is alive but slow gets `heartbeat_misses`
                    # grace before the monitor declares it dead.
                    if (handle.state == ALIVE
                            and handle.missed_pings >= self.heartbeat_misses):
                        self._mark_down(handle, "missed heartbeats")
            if handle.state == DOWN and self.auto_restart:
                self.restart(handle.worker_id)
        return {h.worker_id: h.state for h in self.handles}

    def wait_healthy(self, timeout: float = 10.0) -> bool:
        """Block until every worker is alive (or the timeout passes)."""
        deadline = self.clock.now() + timeout
        while self.clock.now() < deadline:
            if all(h.state == ALIVE for h in self.handles):
                return True
            if self._monitor is None:
                self.check_health()
            self.clock.sleep(min(self.heartbeat_interval, 0.05))
        return all(h.state == ALIVE for h in self.handles)

    # -- accounting -----------------------------------------------------------

    def alive_workers(self) -> List[int]:
        return [h.worker_id for h in self.handles if h.state == ALIVE]

    def stats(self) -> Dict[str, Any]:
        return {
            "workers": self.workers,
            "alive": len(self.alive_workers()),
            "restarts": self.restarts_total,
            "failures": self.failures_total,
            "states": {h.worker_id: h.state for h in self.handles},
            "epochs": {h.worker_id: h.epoch for h in self.handles},
            "lookups_served": {
                h.worker_id: h.lookups_served for h in self.handles
            },
        }
