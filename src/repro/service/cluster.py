"""Supervised worker cluster for sharded SAT serving.

The paper's 2R1W decomposition gives every tile a self-contained serving
record — local SAT, two edge-prefix vectors, one corner scalar — so a
*contiguous range of row-major tile indices* is a natural shard: a worker
process holding that range answers the global SAT value ``F(r, c)`` for
any point inside its tiles with no other state. This module owns the
process side of that design; routing policy (placement, failover,
circuit breaking) lives in :mod:`repro.service.router`.

Three pieces:

* :class:`ShardWorkerState` — the worker-side state machine: install a
  CRC-verified shard checkpoint, apply update deltas, answer point
  lookups. It is transport-agnostic, so the same code runs inside a real
  worker process (``_worker_main``) and inline in the supervisor's
  process (``inline=True``), which is what the deterministic router
  tests drive.
* :class:`CheckpointStore` — the durable tier the cluster recovers from:
  the authoritative :class:`~repro.service.store.Dataset` per name plus
  lazily rebuilt, CRC-32-tagged serialized shard payloads (the same
  integrity idiom as the streaming layer's
  :class:`~repro.sat.out_of_core.StreamCheckpoint`). A restarted worker
  re-hydrates from here, and the router's degraded mode answers from the
  authoritative matrix when a whole range is dark.
* :class:`WorkerSupervisor` — owns the pool: spawn, heartbeat health
  checks, crash detection (a failed RPC *or* missed pings), automatic
  restart with :class:`~repro.util.backoff.ExponentialBackoff` pacing,
  and re-hydration of every shard the restarted worker is assigned.

Large shard payloads cross the process boundary through a
:mod:`multiprocessing.shared_memory` block (the
:mod:`repro.sat.batch` transport pattern: ship a name, not a pickle);
small ones ride inline. Either way the payload carries its CRC-32 and
the worker verifies before installing — a torn or corrupted checkpoint
is rejected with a typed error, never served.

Hot *lookup* traffic takes a fourth piece, :class:`LookupRing`: a
fixed-slot shared-memory request/response ring per worker (raw int64
point batches in, raw value arrays out — no pickle on either side), with
a 1-byte doorbell pipe so an idle worker blocks instead of busy-polling.
The control pipe stays the fallback for oversized or slot-starved
requests and everything that is not a lookup.

Consistency contract: shard installs and update pushes are serialized by
the supervisor's topology lock, so a worker is only marked alive when
its state matches the authoritative version; queries never take that
lock (a mid-rehydration query simply fails over).
"""

from __future__ import annotations

import logging
import os
import pickle
import platform
import selectors
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from multiprocessing import get_context, resource_tracker, shared_memory
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError, CorruptionDetected, UnknownDataset, WorkerUnavailable
from ..obs import runtime as obs
from ..util.backoff import Clock, ExponentialBackoff, SystemClock
from .store import Dataset

__all__ = [
    "CheckpointStore",
    "LookupRing",
    "RingUnavailable",
    "ShardCheckpoint",
    "ShardWorkerState",
    "WorkerSupervisor",
]

logger = logging.getLogger("repro.service.cluster")

#: Payloads at or above this many serialized bytes travel via a
#: shared-memory block instead of the pipe (one copy, no pickle of the
#: bulk arrays through the connection buffer).
SHM_BLOB_THRESHOLD = 64 * 1024

#: Worker states, supervisor-side.
ALIVE = "alive"
DOWN = "down"
RESTARTING = "restarting"

#: Lookup-ring geometry. Eight slots cover the router's fan-out
#: concurrency comfortably (≤ 4 corner groups in flight per worker plus
#: coalesced batches); 128 KiB of request payload fits the coalescer's
#: default 4096-point batch (16 bytes/point) with room for the name.
#: Point batches at or under this size take scalar (non-vectorized)
#: serving and list (non-ndarray) pipe encoding: a single rectangle's
#: <= 4 corners does not amortize numpy's and pickle's fixed costs.
_SCALAR_LOOKUP_MAX = 8

RING_SLOTS = 8
RING_SLOT_PAYLOAD = 128 * 1024

#: The lookup ring's lock-free publication protocol (payload and meta
#: stores issued before a single-byte state flip, reads only after
#: observing it) is sound only under x86-TSO store ordering. On weakly
#: ordered machines (aarch64, ppc64le, ...) a worker could observe
#: REQUEST before the payload bytes land and decode a torn request, so
#: hot lookups stay on the pipe there.
_RING_TSO_SAFE = platform.machine().lower() in (
    "x86_64", "amd64", "i686", "i586", "i486", "i386", "x86",
)


# =============================================================================
# Worker side
# =============================================================================


@dataclass
class _ShardBlock:
    """One installed shard: per-tile serving state for lins ``[lo, hi)``."""

    lo: int
    hi: int
    local: np.ndarray   # (k, t, t)
    col: np.ndarray     # (k, t)
    row: np.ndarray     # (k, t)
    corner: np.ndarray  # (k,)


@dataclass
class _WorkerDataset:
    """A worker's view of one dataset: geometry + its installed shards."""

    t: int
    nb_c: int
    rows: int
    cols: int
    version: int
    blocks: Dict[int, _ShardBlock] = field(default_factory=dict)  # range_id ->


class ShardWorkerState:
    """The transport-agnostic worker state machine.

    ``handle(msg) -> reply`` implements the whole protocol; both the real
    process loop and the supervisor's inline mode call it. Messages are
    tuples ``(op, *args)``; replies are ``("ok", payload)`` or
    ``("error", detail)`` — a worker never lets an exception escape its
    loop (the supervisor treats a dead pipe, not a reply, as a crash).
    """

    def __init__(self, worker_id: int, epoch: int = 0):
        self.worker_id = worker_id
        self.epoch = epoch
        self.datasets: Dict[str, _WorkerDataset] = {}

    # -- protocol -------------------------------------------------------------

    def handle(self, msg: Tuple[Any, ...]) -> Tuple[Any, ...]:
        op = msg[0]
        try:
            if op == "ping":
                return ("ok", {
                    "worker": self.worker_id,
                    "epoch": self.epoch,
                    "datasets": {n: d.version for n, d in self.datasets.items()},
                })
            if op == "load":
                return self._load(*msg[1:])
            if op == "delta":
                return self._delta(*msg[1:])
            if op == "lookup":
                return self._lookup(*msg[1:])
            if op == "lookup_t":
                return self._lookup_tiny(*msg[1:])
            if op == "drop":
                self.datasets.pop(msg[1], None)
                return ("ok", None)
            return ("error", f"unknown op {op!r}")
        except Exception as exc:  # noqa: BLE001 — reply, don't die
            return ("error", f"{type(exc).__name__}: {exc}")

    def _load(self, name: str, meta: Dict[str, Any],
              transport: Tuple[Any, ...]) -> Tuple[Any, ...]:
        blob = _recv_blob(transport)
        crc = zlib.crc32(blob)
        if crc != meta["crc"]:
            return ("error",
                    f"shard checkpoint for {name!r} range {meta['range_id']} "
                    f"failed its CRC (expected {meta['crc']}, got {crc})")
        state = pickle.loads(blob)
        ds = self.datasets.get(name)
        if ds is None or meta["reset"]:
            ds = _WorkerDataset(
                t=meta["t"], nb_c=meta["nb_c"],
                rows=meta["rows"], cols=meta["cols"], version=meta["version"],
            )
            self.datasets[name] = ds
        ds.blocks[meta["range_id"]] = _ShardBlock(
            lo=state["lo"], hi=state["hi"], local=state["local"],
            col=state["col"], row=state["row"], corner=state["corner"],
        )
        ds.version = meta["version"]
        return ("ok", meta["version"])

    def _delta(self, name: str, version: int,
               components: Dict[str, Tuple[np.ndarray, np.ndarray]]) -> Tuple[Any, ...]:
        ds = self.datasets.get(name)
        if ds is None:
            return ("error", f"no dataset {name!r} installed on this worker")
        for block in ds.blocks.values():
            for comp, (lins, values) in components.items():
                mask = (lins >= block.lo) & (lins < block.hi)
                if not mask.any():
                    continue
                k = lins[mask] - block.lo
                getattr(block, comp)[k] = values[mask]
        ds.version = version
        return ("ok", version)

    def _lookup(self, name: str, points) -> Tuple[Any, ...]:
        if isinstance(points, list) and len(points) <= _SCALAR_LOOKUP_MAX:
            reply = self._lookup_tiny(name, points)
            if reply[0] != "ok":
                return reply
            out, version, _dtype = reply[1]
            return ("ok", (out, version))
        pts = np.asarray(points, dtype=np.int64).reshape(-1, 2)
        ok, payload = self._lookup_values(name, pts)
        if not ok:
            return ("error", payload)
        values, version = payload
        if isinstance(points, np.ndarray):
            return ("ok", (values, version))
        # Pipe callers send plain point lists and index the reply like one.
        return ("ok", (values.tolist(), version))

    def _lookup_tiny(self, name: str, points) -> Tuple[Any, ...]:
        """List-wire tiny-batch lookup: ``("ok", (values, version, dtype))``.

        Tiny pipe-encoded batches skip numpy entirely: building and
        tearing down (k, 2) arrays costs more than the lookups. Values
        travel as Python floats (``.item()`` round-trips every bit), but
        that alone loses the dataset dtype — a float32 corner rebuilt as
        float64 stitches at the wrong precision router-side. The dtype
        tag lets the supervisor restore the exact serving dtype, keeping
        the pipe path bit-identical to the ring and ndarray paths.
        """
        ds = self.datasets.get(name)
        if ds is None:
            return ("error", f"no dataset {name!r} installed on this worker")
        out = []
        dtype: Optional[str] = None
        for r, c in points:
            i_tile, i = divmod(r, ds.t)
            j_tile, j = divmod(c, ds.t)
            lin = i_tile * ds.nb_c + j_tile
            for block in ds.blocks.values():
                if block.lo <= lin < block.hi:
                    k = lin - block.lo
                    # Same addition order as TileAggregates.sat_at.
                    value = (block.local[k, i, j] + block.col[k, j]
                             + block.row[k, i] + block.corner[k])
                    if dtype is None:
                        dtype = value.dtype.str
                    out.append(value.item())
                    break
            else:
                return ("error",
                        f"tile {lin} of {name!r} is outside this worker's "
                        f"shards — routing bug or stale placement")
        return ("ok", (out, ds.version, dtype))

    def _lookup_values(self, name: str,
                       pts: np.ndarray) -> Tuple[bool, Any]:
        """Vectorized point-batch SAT lookup: ``(True, (values, version))``.

        ``pts`` is ``(k, 2)`` int64 row/col pairs. Errors come back as
        ``(False, message)`` so both the pipe protocol and the ring
        transport can wrap them in their own envelopes.
        """
        ds = self.datasets.get(name)
        if ds is None:
            return (False, f"no dataset {name!r} installed on this worker")
        if len(pts) == 0:
            return (True, (np.zeros(0, dtype=np.float64), ds.version))
        if len(pts) <= _SCALAR_LOOKUP_MAX:
            return self._lookup_values_scalar(ds, name, pts)
        i_tile, i = np.divmod(pts[:, 0], ds.t)
        j_tile, j = np.divmod(pts[:, 1], ds.t)
        lins = i_tile * ds.nb_c + j_tile
        out: Optional[np.ndarray] = None
        unserved = np.ones(len(pts), dtype=bool)
        for block in ds.blocks.values():
            mask = (lins >= block.lo) & (lins < block.hi)
            if not mask.any():
                continue
            k = lins[mask] - block.lo
            # Same addition order as TileAggregates.sat_at — the stitched
            # answer must be bit-identical to the single-store path.
            values = (block.local[k, i[mask], j[mask]] + block.col[k, j[mask]]
                      + block.row[k, i[mask]] + block.corner[k])
            if out is None:
                out = np.zeros(len(pts), dtype=values.dtype)
            out[mask] = values
            unserved[mask] = False
        if unserved.any():
            lin = int(lins[unserved][0])
            return (False,
                    f"tile {lin} of {name!r} is outside this worker's "
                    f"shards — routing bug or stale placement")
        assert out is not None  # len(pts) >= 1 and all points served
        return (True, (out, ds.version))

    def _lookup_values_scalar(self, ds: "_WorkerDataset", name: str,
                              pts: np.ndarray) -> Tuple[bool, Any]:
        """Scalar-indexed variant of :meth:`_lookup_values` for tiny batches.

        A handful of points (a single rectangle's corners) does not
        amortize the vectorized path's fixed numpy cost; plain indexing
        is ~2x faster per RPC. Same addition order, so the values are
        bit-identical with the vectorized path.
        """
        t = ds.t
        blocks = ds.blocks.values()
        vals: List[Any] = []
        for r, c in pts:
            i_tile, i = divmod(int(r), t)
            j_tile, j = divmod(int(c), t)
            lin = i_tile * ds.nb_c + j_tile
            for block in blocks:
                if block.lo <= lin < block.hi:
                    k = lin - block.lo
                    vals.append(block.local[k, i, j] + block.col[k, j]
                                + block.row[k, i] + block.corner[k])
                    break
            else:
                return (False,
                        f"tile {lin} of {name!r} is outside this worker's "
                        f"shards — routing bug or stale placement")
        out = np.empty(len(vals), dtype=vals[0].dtype)
        out[:] = vals
        return (True, (out, ds.version))


def _worker_main(worker_id: int, epoch: int, conn,
                 ring_name: Optional[str] = None,
                 doorbell_fd: Optional[int] = None) -> None:
    """Entry point of a shard worker process: recv → handle → send.

    With a lookup ring attached, the loop blocks on *both* the control
    pipe and the ring's doorbell pipe — a doorbell byte means "scan the
    ring", so hot lookups are served at shared-memory speed while the
    worker still costs nothing when idle (no busy polling).
    """
    state = ShardWorkerState(worker_id, epoch)
    ring = LookupRing.attach(ring_name) if ring_name is not None else None
    sel = None
    if ring is not None and doorbell_fd is not None:
        # One selector for the process's lifetime — building one per
        # message (what multiprocessing.connection.wait does) costs more
        # than a small lookup itself.
        sel = selectors.DefaultSelector()
        sel.register(conn, selectors.EVENT_READ)
        sel.register(doorbell_fd, selectors.EVENT_READ)
    try:
        while True:
            if sel is not None:
                try:
                    ready = {key.fileobj for key, _ in sel.select(1.0)}
                except (OSError, KeyboardInterrupt):
                    break
                if doorbell_fd in ready:
                    try:
                        os.read(doorbell_fd, 65536)  # drain pending doorbells
                    except OSError:
                        pass
                    ring.serve(lambda payload: _serve_ring_lookup(state, payload))
                if conn not in ready:
                    continue
            try:
                msg = conn.recv()
            except (EOFError, OSError, KeyboardInterrupt):
                break
            if msg[0] == "shutdown":
                try:
                    conn.send(("ok", None))
                except (BrokenPipeError, OSError):
                    pass
                break
            try:
                conn.send(state.handle(msg))
            except (BrokenPipeError, OSError):
                break
    finally:
        if ring is not None:
            ring.close()


# -- blob transport -----------------------------------------------------------


def _send_blob(blob: bytes) -> Tuple[Tuple[Any, ...], Optional[shared_memory.SharedMemory]]:
    """Pick a transport for ``blob``: inline bytes, or a shared block.

    Returns ``(transport, shm)``; the caller must ``close()``/``unlink()``
    the block (if any) once the receiver acknowledged.
    """
    if len(blob) < SHM_BLOB_THRESHOLD:
        return ("inline", blob), None
    shm = shared_memory.SharedMemory(create=True, size=len(blob))
    shm.buf[: len(blob)] = blob
    return ("shm", shm.name, len(blob)), shm


def _recv_blob(transport: Tuple[Any, ...]) -> bytes:
    """Materialize a blob from its transport descriptor."""
    if transport[0] == "inline":
        return transport[1]
    _, name, nbytes = transport
    shm = shared_memory.SharedMemory(name=name)
    try:
        return bytes(shm.buf[:nbytes])
    finally:
        shm.close()


# =============================================================================
# Shared-memory lookup ring
# =============================================================================
#
# The hot query path pays for the pipe twice: a pickle on each side and a
# wakeup through the connection buffer — the latency-`l` term of the
# paper's C/w + S + (B+1)l cost, charged per round trip. The ring keeps
# the wakeup (a 1-byte doorbell down an os.pipe, so the worker never busy
# polls) but replaces the payload path with fixed slots in one
# multiprocessing.shared_memory segment: the client packs raw int64
# points into a free slot, flips the slot's state word, and rings the
# doorbell; the worker answers in place and flips the state back.
#
# Slot layout: a 4-byte state word (FREE → REQUEST → RESPONSE → FREE),
# then a 16-byte meta block (seq, req_len, resp_len, status), then the
# payload area. Every state transition changes exactly one byte of the
# little-endian word, so even a byte-wise copy publishes atomically; the
# payload and meta are always written *before* the state flip and read
# *after* observing it. That publication order is only guaranteed by
# x86-TSO store ordering, so the supervisor enables the ring strictly on
# x86 hosts (_RING_TSO_SAFE) — weakly ordered machines keep the pipe,
# which is slower but never torn. The seq echo guards
# against a stale slot ever being read as a fresh answer: a slot whose
# request timed out is leaked, never recycled — the whole ring is
# replaced when its worker restarts.

_RING_MAGIC = 0x53415452  # "SATR"
_RING_HEADER = struct.Struct("<III4x")   # magic, slots, slot_payload
_SLOT_STATE = struct.Struct("<I")        # the publication word
_SLOT_META = struct.Struct("<IIII")      # seq, req_len, resp_len, status
_SLOT_HEADER_BYTES = 24                  # state + meta, padded to 8 bytes
_SLOT_FREE, _SLOT_REQUEST, _SLOT_RESPONSE = 0, 1, 2

_REQ_HEADER = struct.Struct("<HI")       # name_len, n_points
_RESP_HEADER = struct.Struct("<QI8s")    # version, n_values, dtype str

_RING_OK, _RING_ERROR = 0, 1


class RingUnavailable(Exception):
    """This request cannot ride the ring (no free slot / oversized payload).

    Purely an internal signal: the supervisor catches it and falls back
    to the pipe, which has no size or slot limits.
    """


def _pack_lookup_request(name: str, pts: np.ndarray) -> bytes:
    name_bytes = name.encode("utf-8")
    return (_REQ_HEADER.pack(len(name_bytes), len(pts))
            + name_bytes
            + np.ascontiguousarray(pts, dtype=np.int64).tobytes())


def _unpack_lookup_request(payload: bytes) -> Tuple[str, np.ndarray]:
    name_len, n_points = _REQ_HEADER.unpack_from(payload, 0)
    off = _REQ_HEADER.size
    name = payload[off:off + name_len].decode("utf-8")
    pts = np.frombuffer(
        payload, dtype=np.int64, count=2 * n_points, offset=off + name_len
    ).reshape(n_points, 2)
    return name, pts


def _pack_lookup_response(values: np.ndarray, version: int) -> bytes:
    dtype_str = values.dtype.str.encode("ascii")
    return (_RESP_HEADER.pack(version, len(values), dtype_str)
            + np.ascontiguousarray(values).tobytes())


def _unpack_lookup_response(payload: bytes) -> Tuple[np.ndarray, int]:
    version, n_values, dtype_str = _RESP_HEADER.unpack_from(payload, 0)
    dtype = np.dtype(dtype_str.rstrip(b"\x00").decode("ascii"))
    values = np.frombuffer(
        payload, dtype=dtype, count=n_values, offset=_RESP_HEADER.size
    ).copy()
    return values, version


def _serve_ring_lookup(state: ShardWorkerState, payload: bytes) -> Tuple[int, bytes]:
    """Ring request handler: decode, evaluate, encode — never raise."""
    try:
        name, pts = _unpack_lookup_request(payload)
        ok, result = state._lookup_values(name, pts)
        if not ok:
            return (_RING_ERROR, result.encode("utf-8"))
        values, version = result
        return (_RING_OK, _pack_lookup_response(values, version))
    except Exception as exc:  # noqa: BLE001 — reply, don't die
        return (_RING_ERROR, f"{type(exc).__name__}: {exc}".encode("utf-8"))


class LookupRing:
    """Fixed-slot shared-memory request/response ring (one per worker).

    The supervisor (single client process, many threads) owns slot
    allocation behind a lock; the worker scans all slots on each doorbell.
    Per slot there is exactly one writer at a time — the client until the
    state word says REQUEST, the worker until it says RESPONSE — so no
    cross-process lock exists anywhere on the hot path.
    """

    def __init__(self, shm: shared_memory.SharedMemory, slots: int,
                 slot_payload: int, *, owner: bool):
        self._shm = shm
        self._owner = owner
        self.slots = slots
        self.slot_payload = slot_payload
        self._slot_size = _SLOT_HEADER_BYTES + slot_payload
        self._lock = threading.Lock()
        self._free = list(range(slots))
        self._seq = 0
        # With spare cores the worker answers while we spin (~5-20us);
        # on a crowded host every spin steals the timeslice the worker
        # needs, so yield almost immediately.
        self._spin_limit = 50 if (os.cpu_count() or 1) >= 2 else 2

    # -- lifecycle ------------------------------------------------------------

    @classmethod
    def create(cls, slots: int = RING_SLOTS,
               slot_payload: int = RING_SLOT_PAYLOAD) -> "LookupRing":
        size = _RING_HEADER.size + slots * (_SLOT_HEADER_BYTES + slot_payload)
        shm = shared_memory.SharedMemory(create=True, size=size)
        _RING_HEADER.pack_into(shm.buf, 0, _RING_MAGIC, slots, slot_payload)
        ring = cls(shm, slots, slot_payload, owner=True)
        for slot in range(slots):
            _SLOT_STATE.pack_into(shm.buf, ring._base(slot), _SLOT_FREE)
        return ring

    @classmethod
    def attach(cls, name: str) -> "LookupRing":
        shm = shared_memory.SharedMemory(name=name)
        magic, slots, slot_payload = _RING_HEADER.unpack_from(shm.buf, 0)
        if magic != _RING_MAGIC:
            shm.close()
            raise CorruptionDetected(
                f"shared block {name!r} is not a lookup ring "
                f"(magic {magic:#x})"
            )
        return cls(shm, slots, slot_payload, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def _base(self, slot: int) -> int:
        return _RING_HEADER.size + slot * self._slot_size

    def close(self) -> None:
        """Detach from the segment (worker side, or owner after retire)."""
        try:
            self._shm.close()
        except BufferError:
            # A reader thread still holds a view mid-request; the mapping
            # leaks until process exit, which is bounded (restarts are
            # rare and each replaces the ring exactly once).
            pass

    def retire(self) -> None:
        """Owner-side teardown: unlink the segment, then detach."""
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
        self.close()

    # -- client side ----------------------------------------------------------

    def request(self, payload: bytes, timeout: float, *,
                notify: Optional[Callable[[], None]] = None,
                alive: Optional[Callable[[], bool]] = None) -> Tuple[int, bytes]:
        """Ship one request, wait for its answer: ``(status, response)``.

        Raises :class:`RingUnavailable` when the payload is oversized or
        every slot is busy (caller falls back to the pipe), and
        :class:`TimeoutError` when the worker never answers — the slot is
        then *leaked* on purpose: the worker may still write a late
        response into it, so it must never be handed to a new request.
        ``notify`` is called once, after the request is published (the
        doorbell); ``alive`` lets the wait fail fast when the worker
        process dies instead of burning the whole timeout.
        """
        if len(payload) > self.slot_payload:
            raise RingUnavailable(
                f"payload of {len(payload)} bytes exceeds the ring's "
                f"{self.slot_payload}-byte slots"
            )
        with self._lock:
            if not self._free:
                raise RingUnavailable("all ring slots are in flight")
            slot = self._free.pop()
            self._seq = (self._seq + 1) & 0xFFFFFFFF or 1  # 0 marks a fresh slot
            seq = self._seq
        base = self._base(slot)
        buf = self._shm.buf
        try:
            buf[base + _SLOT_HEADER_BYTES:
                base + _SLOT_HEADER_BYTES + len(payload)] = payload
            _SLOT_META.pack_into(buf, base + 4, seq, len(payload), 0, 0)
            _SLOT_STATE.pack_into(buf, base, _SLOT_REQUEST)
            if notify is not None:
                notify()
            deadline = time.monotonic() + timeout
            spins = 0
            spin_limit = self._spin_limit
            while True:
                state = _SLOT_STATE.unpack_from(buf, base)[0]
                if state == _SLOT_RESPONSE:
                    rseq, _req_len, resp_len, status = _SLOT_META.unpack_from(
                        buf, base + 4
                    )
                    if rseq == seq:
                        resp = bytes(
                            buf[base + _SLOT_HEADER_BYTES:
                                base + _SLOT_HEADER_BYTES + resp_len]
                        )
                        _SLOT_STATE.pack_into(buf, base, _SLOT_FREE)
                        with self._lock:
                            self._free.append(slot)
                        return status, resp
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"no ring response within {timeout}s (slot {slot} leaked)"
                    )
                spins += 1
                if spins > spin_limit:
                    if (spins % 64 == 0 and alive is not None
                            and not alive()):
                        # One last look — the answer may have landed just
                        # before the worker died.
                        if _SLOT_STATE.unpack_from(buf, base)[0] != _SLOT_RESPONSE:
                            raise TimeoutError(
                                "worker process died before answering "
                                f"(slot {slot} leaked)"
                            )
                        continue
                    # Yield the CPU first — on a host with fewer cores
                    # than workers the server needs our timeslice to
                    # answer at all, and sleep(0) hands it over without
                    # the ~100us timer quantum a real sleep costs. Only
                    # back off to timed sleeps once the answer is
                    # genuinely slow.
                    time.sleep(0 if spins < 4000 else 0.00005)
        except ValueError as exc:
            # The segment's buffer was released under us (teardown race).
            raise TimeoutError(f"lookup ring torn down mid-request: {exc}") from exc

    # -- worker side ----------------------------------------------------------

    def serve(self, handler: Callable[[bytes], Tuple[int, bytes]]) -> int:
        """Answer every pending request in place; returns requests served."""
        served = 0
        buf = self._shm.buf
        for slot in range(self.slots):
            base = self._base(slot)
            if _SLOT_STATE.unpack_from(buf, base)[0] != _SLOT_REQUEST:
                continue
            seq, req_len, _resp_len, _status = _SLOT_META.unpack_from(buf, base + 4)
            payload = bytes(
                buf[base + _SLOT_HEADER_BYTES: base + _SLOT_HEADER_BYTES + req_len]
            )
            status, resp = handler(payload)
            if len(resp) > self.slot_payload:  # never overrun the slot
                status = _RING_ERROR
                resp = (f"ring response of {len(resp)} bytes exceeds the "
                        f"{self.slot_payload}-byte slot").encode("utf-8")
            buf[base + _SLOT_HEADER_BYTES:
                base + _SLOT_HEADER_BYTES + len(resp)] = resp
            _SLOT_META.pack_into(buf, base + 4, seq, req_len, len(resp), status)
            _SLOT_STATE.pack_into(buf, base, _SLOT_RESPONSE)
            served += 1
        return served


# =============================================================================
# Checkpoint store (the durable tier)
# =============================================================================


@dataclass
class ShardCheckpoint:
    """One serialized shard at one dataset version, CRC-32 tagged."""

    range_id: int
    lo: int
    hi: int
    version: int
    blob: bytes
    crc: int


class _CheckpointEntry:
    __slots__ = ("dataset", "ranges", "checkpoints")

    def __init__(self, dataset: Dataset, ranges: List[Tuple[int, int]]):
        self.dataset = dataset
        self.ranges = ranges  # range_id -> (lo, hi)
        self.checkpoints: Dict[int, ShardCheckpoint] = {}


class CheckpointStore:
    """Authoritative datasets plus CRC-verified shard checkpoints.

    The store is what the cluster *recovers from*: ingest registers the
    dataset and its range decomposition here, updates mutate the
    authoritative copy (through the ordinary bit-exact incremental-update
    paths), and :meth:`payload_for` serves a serialized shard at the
    current version — rebuilt lazily, so steady-state updates never pay
    for checkpoints nobody is restoring.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, _CheckpointEntry] = {}
        self._lock = threading.RLock()
        self.rebuilds = 0

    def register(self, dataset: Dataset, ranges: List[Tuple[int, int]]) -> None:
        with self._lock:
            self._entries[dataset.name] = _CheckpointEntry(dataset, ranges)

    def drop(self, name: str) -> None:
        with self._lock:
            self._entries.pop(name, None)

    def names(self) -> List[str]:
        with self._lock:
            return list(self._entries)

    def dataset(self, name: str) -> Dataset:
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise UnknownDataset(
                f"no dataset named {name!r} is registered with the cluster "
                f"(held: {self.names() or 'none'})"
            )
        return entry.dataset

    def ranges(self, name: str) -> List[Tuple[int, int]]:
        self.dataset(name)  # raises UnknownDataset
        with self._lock:
            return list(self._entries[name].ranges)

    def payload_for(self, name: str, range_id: int) -> ShardCheckpoint:
        """The shard's checkpoint at the dataset's *current* version."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise UnknownDataset(f"no dataset named {name!r} is registered")
            ds = entry.dataset
            with ds.lock:
                version = ds.version
                cp = entry.checkpoints.get(range_id)
                if cp is not None and cp.version == version:
                    return cp
                lo, hi = entry.ranges[range_id]
                blob = pickle.dumps(
                    ds.values.shard_state(lo, hi), protocol=pickle.HIGHEST_PROTOCOL
                )
            cp = ShardCheckpoint(
                range_id=range_id, lo=lo, hi=hi, version=version,
                blob=blob, crc=zlib.crc32(blob),
            )
            entry.checkpoints[range_id] = cp
            self.rebuilds += 1
            obs.inc("cluster_checkpoints_built_total")
            obs.observe("cluster_checkpoint_bytes", len(blob))
            return cp

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "datasets": len(self._entries),
                "checkpoint_rebuilds": self.rebuilds,
                "checkpoint_bytes": sum(
                    len(cp.blob)
                    for e in self._entries.values()
                    for cp in e.checkpoints.values()
                ),
            }


# =============================================================================
# Supervisor
# =============================================================================


@dataclass
class WorkerHandle:
    """Supervisor-side record of one worker slot."""

    worker_id: int
    state: str = DOWN
    epoch: int = -1
    process: Any = None
    conn: Any = None
    inline_state: Optional[ShardWorkerState] = None
    lock: threading.Lock = field(default_factory=threading.Lock)
    missed_pings: int = 0
    lookups_served: int = 0
    restarts: int = 0
    ring: Optional[LookupRing] = None
    doorbell_w: int = -1
    #: Guards ``doorbell_w``/``ring`` lifecycle against in-flight ring
    #: notifies — a tiny critical section, never held across an RPC (so
    #: it cannot serialize behind ``lock``'s pipe round trips).
    ring_lock: threading.Lock = field(default_factory=threading.Lock)
    ring_lookups: int = 0
    pipe_lookups: int = 0


class WorkerSupervisor:
    """Owns a pool of shard workers: health, crashes, restart, rehydrate.

    ``inline=True`` swaps the worker processes for in-process
    :class:`ShardWorkerState` objects behind the same RPC seam — the
    deterministic mode the router unit tests (and any single-process
    deployment) use; a "crash" there is the supervisor dropping the
    worker's state object, which loses its shards exactly like a killed
    process does.

    Crash detection is two-pronged: any failed RPC marks the worker down
    immediately (the common case — the router trips over the corpse), and
    the heartbeat monitor catches workers that die while idle. Restarts
    re-hydrate every assigned shard from the :class:`CheckpointStore`
    (CRC-verified on install) under the topology lock, so a restarted
    worker is only marked alive with state at the authoritative version.
    """

    def __init__(
        self,
        workers: int = 4,
        *,
        checkpoints: Optional[CheckpointStore] = None,
        inline: bool = False,
        clock: Optional[Clock] = None,
        rpc_timeout: float = 5.0,
        heartbeat_interval: float = 0.1,
        heartbeat_misses: int = 3,
        auto_restart: bool = True,
        restart_backoff: Optional[ExponentialBackoff] = None,
        max_restart_attempts: int = 3,
        use_ring: bool = True,
        ring_slots: int = RING_SLOTS,
        ring_slot_bytes: int = RING_SLOT_PAYLOAD,
    ):
        if workers < 1:
            raise ConfigurationError(f"cluster needs >= 1 worker, got {workers}")
        self.checkpoints = checkpoints if checkpoints is not None else CheckpointStore()
        self.inline = inline
        self.clock = clock if clock is not None else SystemClock()
        self.rpc_timeout = rpc_timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_misses = heartbeat_misses
        self.auto_restart = auto_restart
        self.restart_backoff = restart_backoff or ExponentialBackoff(
            base=0.01, factor=2.0, cap=0.25
        )
        self.max_restart_attempts = max_restart_attempts
        self.ring_slots = ring_slots
        self.ring_slot_bytes = ring_slot_bytes
        #: worker_id -> [(dataset, range_id), ...], maintained by the router.
        self.assignments: Dict[int, List[Tuple[str, int]]] = {
            w: [] for w in range(workers)
        }
        #: Serializes topology changes (ingest pushes, update pushes,
        #: rehydration) so a restarting worker cannot install a payload
        #: that an in-flight update has already superseded. Queries never
        #: take it.
        self.topology_lock = threading.RLock()
        self._ctx = get_context()
        # The ring relies on the doorbell pipe fds surviving into the
        # child (so it needs the fork start method, the default on
        # Linux) and on x86-TSO store ordering for its fence-free
        # publication protocol; elsewhere hot lookups simply stay on
        # the pipe.
        self.use_ring = (bool(use_ring) and not inline
                         and self._ctx.get_start_method() == "fork"
                         and _RING_TSO_SAFE)
        # Transport split for lookups: bulk point batches always take
        # the ring (no pickling, payload stays in shared memory), but a
        # tiny batch — one rectangle's corners — only wins there when
        # the workers have cores to answer on while the client polls.
        # On a crowded host the pipe's blocking recv gets a directed
        # kernel wakeup the poll loop cannot match, so small lookups
        # stay on the pipe.
        self._ring_small_lookups = (os.cpu_count() or 1) > workers
        if not inline:
            # Start the shared-memory resource tracker *before* forking any
            # worker. Forked workers then inherit it, so their attach-time
            # registrations dedupe against the sender's create-time one and
            # the single unlink() balances the books. A worker forked with
            # no tracker running would lazily start its own and warn at
            # exit about segments the sender already unlinked.
            resource_tracker.ensure_running()
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self.restarts_total = 0
        self.failures_total = 0
        self.handles = [WorkerHandle(worker_id=w) for w in range(workers)]
        for handle in self.handles:
            self._spawn(handle)

    # -- lifecycle ------------------------------------------------------------

    @property
    def workers(self) -> int:
        return len(self.handles)

    def handle(self, worker_id: int) -> WorkerHandle:
        return self.handles[worker_id]

    def _spawn(self, handle: WorkerHandle) -> None:
        """(Re)create the worker behind ``handle`` with a fresh epoch."""
        handle.epoch += 1
        handle.missed_pings = 0
        if self.inline:
            handle.inline_state = ShardWorkerState(handle.worker_id, handle.epoch)
        else:
            self._close_ring(handle)  # a dead epoch's ring is never reused
            ring: Optional[LookupRing] = None
            doorbell_r = -1
            if self.use_ring:
                ring = LookupRing.create(self.ring_slots, self.ring_slot_bytes)
                doorbell_r, doorbell_w = os.pipe()
                os.set_blocking(doorbell_w, False)
                with handle.ring_lock:
                    handle.doorbell_w = doorbell_w
            parent, child = self._ctx.Pipe()
            process = self._ctx.Process(
                target=_worker_main,
                args=(handle.worker_id, handle.epoch, child,
                      ring.name if ring is not None else None,
                      doorbell_r if ring is not None else None),
                daemon=True,
                name=f"repro-shard-worker-{handle.worker_id}",
            )
            process.start()
            child.close()
            if doorbell_r != -1:
                os.close(doorbell_r)  # the child holds the only read end now
            handle.process = process
            handle.conn = parent
            handle.ring = ring
        handle.state = ALIVE

    def _close_ring(self, handle: WorkerHandle) -> None:
        # Detach the fd/ring from the handle *under the ring lock* before
        # closing: an in-flight _rpc_ring notify re-reads doorbell_w under
        # the same lock, so it can never write to an fd number the OS has
        # already recycled for a new epoch's pipes.
        with handle.ring_lock:
            ring, handle.ring = handle.ring, None
            doorbell_w, handle.doorbell_w = handle.doorbell_w, -1
        if ring is not None:
            ring.retire()
        if doorbell_w != -1:
            try:
                os.close(doorbell_w)
            except OSError:
                pass

    def stop(self) -> None:
        """Stop the monitor and terminate every worker."""
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        for handle in self.handles:
            if self.inline:
                handle.inline_state = None
            else:
                with handle.lock:
                    if handle.conn is not None:
                        try:
                            handle.conn.send(("shutdown",))
                        except (BrokenPipeError, OSError):
                            pass
                        handle.conn.close()
                        handle.conn = None
                if handle.process is not None:
                    handle.process.join(timeout=2.0)
                    if handle.process.is_alive():
                        handle.process.kill()
                        handle.process.join(timeout=2.0)
                    handle.process = None
                self._close_ring(handle)
            handle.state = DOWN

    def __enter__(self) -> "WorkerSupervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- RPC ------------------------------------------------------------------

    def rpc(self, worker_id: int, msg: Tuple[Any, ...],
            timeout: Optional[float] = None) -> Any:
        """One request/reply exchange; failures mark the worker down.

        Raises :class:`~repro.errors.WorkerUnavailable` when the worker is
        not alive, its pipe breaks, the reply times out, or it answers
        with an error envelope. The caller (router) treats that as "this
        replica is gone": record the failure and try the next one.
        """
        handle = self.handles[worker_id]
        if handle.state != ALIVE:
            raise WorkerUnavailable(
                f"worker {worker_id} is {handle.state} (epoch {handle.epoch})"
            )
        timeout = self.rpc_timeout if timeout is None else timeout
        op = msg[0]
        is_lookup = op == "lookup"
        if self.inline:
            reply = self._rpc_inline(handle, msg)
        elif (is_lookup and handle.ring is not None
              and (self._ring_small_lookups
                   or len(msg[2]) > _SCALAR_LOOKUP_MAX)):
            reply = self._rpc_ring(handle, msg, timeout)
        else:
            if is_lookup:
                handle.pipe_lookups += 1
                wire, decode = self._encode_pipe_lookup(msg)
                reply = decode(self._rpc_process(handle, wire, timeout))
            else:
                reply = self._rpc_process(handle, msg, timeout)
        if reply[0] != "ok":
            self._mark_down(handle, f"error reply: {reply[1]}")
            raise WorkerUnavailable(
                f"worker {worker_id} rejected {op!r}: {reply[1]}"
            )
        if is_lookup:
            handle.lookups_served += 1
        return reply[1]

    @staticmethod
    def _encode_pipe_lookup(msg):
        """Choose the pipe wire format for a lookup's point batch.

        Tiny ndarray batches go over as ``lookup_t`` plain point lists —
        pickling a small ndarray (and its ndarray reply) costs several
        times the list encoding. Values survive exactly (``tolist``
        round-trips every float bit-for-bit) and the reply carries the
        dataset's dtype tag, so the rebuilt ndarray matches the ring and
        ndarray paths bit-for-bit — float32 corners must not come back
        as float64, or the router's stitch sums at the wrong precision.
        """
        points = msg[2]
        if not isinstance(points, np.ndarray) or len(points) > _SCALAR_LOOKUP_MAX:
            return msg, lambda reply: reply

        def decode(reply):
            if reply[0] != "ok":
                return reply
            values, version, dtype = reply[1]
            return ("ok", (np.asarray(values, dtype=dtype), version))

        return ("lookup_t", msg[1], [(int(r), int(c)) for r, c in points]), decode

    def _rpc_ring(self, handle: WorkerHandle, msg, timeout: float):
        """Ship a lookup over the worker's shared-memory ring.

        Falls back to the pipe when the ring cannot take the request
        (all slots busy, oversized batch); a transport failure marks the
        worker down exactly like a broken pipe would.
        """
        ring = handle.ring
        _op, name, points = msg
        payload = _pack_lookup_request(
            name, np.asarray(points, dtype=np.int64).reshape(-1, 2)
        )
        epoch = handle.epoch
        process = handle.process

        def notify() -> None:
            # Re-read the fd under the ring lock and gate on the epoch: a
            # concurrent restart closes doorbell_w and the fresh pipes may
            # reuse the same fd number, so a captured fd could write a
            # stray byte into an unrelated descriptor (worst case, the new
            # control pipe's framed stream).
            with handle.ring_lock:
                if handle.epoch != epoch or handle.doorbell_w == -1:
                    return
                try:
                    os.write(handle.doorbell_w, b"!")
                except BlockingIOError:
                    pass  # doorbells already pending; the worker will scan
                except OSError:
                    pass  # teardown race; the request path will time out

        try:
            status, data = ring.request(
                payload, timeout, notify=notify,
                alive=lambda: process is not None and process.is_alive(),
            )
        except RingUnavailable:
            handle.pipe_lookups += 1
            return self._rpc_process(handle, msg, timeout)
        except (TimeoutError, OSError, ValueError) as exc:
            self._mark_down(handle, f"ring: {type(exc).__name__}: {exc}")
            raise WorkerUnavailable(
                f"worker {handle.worker_id} (epoch {handle.epoch}) is "
                f"unreachable over its lookup ring: {exc}"
            ) from exc
        handle.ring_lookups += 1
        if status != _RING_OK:
            return ("error", data.decode("utf-8", "replace"))
        return ("ok", _unpack_lookup_response(data))

    def _rpc_inline(self, handle: WorkerHandle, msg) -> Tuple[Any, ...]:
        state = handle.inline_state
        if state is None:
            self._mark_down(handle, "inline state dropped")
            raise WorkerUnavailable(f"worker {handle.worker_id} has no state")
        return state.handle(msg)

    def _rpc_process(self, handle: WorkerHandle, msg, timeout: float):
        # No state check here: the public rpc() gates on ALIVE, while the
        # supervisor's own rehydration path talks to a RESTARTING worker.
        with handle.lock:
            conn = handle.conn
            if conn is None:
                raise WorkerUnavailable(
                    f"worker {handle.worker_id} has no connection "
                    f"(state {handle.state})"
                )
            try:
                conn.send(msg)
                if not conn.poll(timeout):
                    raise TimeoutError(
                        f"no reply to {msg[0]!r} within {timeout}s"
                    )
                return conn.recv()
            except (BrokenPipeError, ConnectionResetError, EOFError, OSError,
                    TimeoutError) as exc:
                self._mark_down(handle, f"{type(exc).__name__}: {exc}")
                raise WorkerUnavailable(
                    f"worker {handle.worker_id} (epoch {handle.epoch}) is "
                    f"unreachable: {exc}"
                ) from exc

    def _mark_down(self, handle: WorkerHandle, reason: str) -> None:
        if handle.state == ALIVE:
            handle.state = DOWN
            self.failures_total += 1
            obs.inc("cluster_worker_failures_total")
            logger.warning(
                "worker %d (epoch %d) marked down: %s",
                handle.worker_id, handle.epoch, reason,
            )

    # -- chaos ----------------------------------------------------------------

    def kill_worker(self, worker_id: int) -> None:
        """SIGKILL a worker (chaos hook) — no cleanup, like a real crash.

        The supervisor does *not* mark the worker down here: detection
        must go through the same paths a real crash exercises (a failed
        RPC or missed heartbeats).
        """
        handle = self.handles[worker_id]
        if self.inline:
            handle.inline_state = None  # its memory — and shards — are gone
        elif handle.process is not None:
            handle.process.kill()
            handle.process.join(timeout=2.0)
        obs.inc("cluster_workers_killed_total")
        logger.info("chaos: killed worker %d (epoch %d)", worker_id, handle.epoch)

    # -- recovery -------------------------------------------------------------

    def restart(self, worker_id: int) -> bool:
        """Restart a down worker and re-hydrate its shards; True on success."""
        handle = self.handles[worker_id]
        if handle.state == ALIVE:
            return True
        handle.state = RESTARTING
        for attempt in range(self.max_restart_attempts):
            try:
                self._teardown_process(handle)
                with self.topology_lock:
                    self._spawn(handle)
                    handle.state = RESTARTING  # not routable until hydrated
                    self._rehydrate(handle)
                    handle.state = ALIVE
                handle.restarts += 1
                self.restarts_total += 1
                obs.inc("cluster_worker_restarts_total")
                logger.info(
                    "worker %d restarted (epoch %d, %d shard(s) re-hydrated)",
                    worker_id, handle.epoch, len(self.assignments[worker_id]),
                )
                return True
            except (WorkerUnavailable, CorruptionDetected, OSError) as exc:
                logger.warning(
                    "restart attempt %d for worker %d failed: %s",
                    attempt, worker_id, exc,
                )
                self.restart_backoff.pause(self.clock, attempt)
        handle.state = DOWN
        return False

    def _teardown_process(self, handle: WorkerHandle) -> None:
        if self.inline:
            handle.inline_state = None
            return
        with handle.lock:
            if handle.conn is not None:
                handle.conn.close()
                handle.conn = None
        if handle.process is not None:
            if handle.process.is_alive():
                handle.process.kill()
            handle.process.join(timeout=2.0)
            handle.process = None
        self._close_ring(handle)

    def _rehydrate(self, handle: WorkerHandle) -> None:
        """Install every assigned shard from its current checkpoint."""
        seen: set = set()
        for name, range_id in self.assignments[handle.worker_id]:
            cp = self.checkpoints.payload_for(name, range_id)
            self.load_shard(handle.worker_id, name, cp, reset=name not in seen)
            seen.add(name)
            obs.inc("cluster_shards_rehydrated_total")

    def load_shard(self, worker_id: int, name: str, cp: ShardCheckpoint,
                   *, reset: bool = False) -> None:
        """Ship one checkpoint to a worker (shared-memory for big blobs).

        The worker verifies the CRC before installing; ``reset=True``
        drops any state the worker already holds for the dataset (the
        first shard of a rehydration, so a half-dead epoch's leftovers
        can never mix with fresh state).
        """
        ds = self.checkpoints.dataset(name)
        meta = {
            "range_id": cp.range_id, "version": cp.version, "crc": cp.crc,
            "t": ds.values.t, "nb_c": ds.values.nb_c,
            "rows": ds.values.rows, "cols": ds.values.cols,
            "reset": reset,
        }
        transport, shm = _send_blob(cp.blob)
        try:
            handle = self.handles[worker_id]
            state = handle.state
            if state != ALIVE and state != RESTARTING:
                raise WorkerUnavailable(f"worker {worker_id} is {state}")
            if self.inline:
                reply = self._rpc_inline(handle, ("load", name, meta, transport))
            else:
                reply = self._rpc_process(
                    handle, ("load", name, meta, transport), self.rpc_timeout
                )
            if reply[0] != "ok":
                self._mark_down(handle, f"load rejected: {reply[1]}")
                if "CRC" in str(reply[1]):
                    raise CorruptionDetected(str(reply[1]))
                raise WorkerUnavailable(
                    f"worker {worker_id} rejected shard load: {reply[1]}"
                )
        finally:
            if shm is not None:
                shm.close()
                shm.unlink()

    # -- health monitoring ----------------------------------------------------

    def start_monitor(self) -> None:
        """Run heartbeat checks (and auto-restarts) on a background thread."""
        if self._monitor is not None:
            return
        self._stop.clear()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-cluster-monitor", daemon=True
        )
        self._monitor.start()

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            try:
                self.check_health()
            except Exception:  # noqa: BLE001 — the monitor must survive
                logger.exception("cluster health check failed")

    def check_health(self) -> Dict[int, str]:
        """One health pass: ping alive workers, restart down ones."""
        for handle in self.handles:
            if handle.state == ALIVE:
                try:
                    self.rpc(handle.worker_id, ("ping",),
                             timeout=self.rpc_timeout)
                    handle.missed_pings = 0
                    obs.inc("cluster_heartbeats_total", result="ok")
                except WorkerUnavailable:
                    handle.missed_pings += 1
                    obs.inc("cluster_heartbeats_total", result="missed")
                    # rpc already marked it down on transport failure; a
                    # worker that is alive but slow gets `heartbeat_misses`
                    # grace before the monitor declares it dead.
                    if (handle.state == ALIVE
                            and handle.missed_pings >= self.heartbeat_misses):
                        self._mark_down(handle, "missed heartbeats")
            if handle.state == DOWN and self.auto_restart:
                self.restart(handle.worker_id)
        return {h.worker_id: h.state for h in self.handles}

    def wait_healthy(self, timeout: float = 10.0) -> bool:
        """Block until every worker is alive (or the timeout passes)."""
        deadline = self.clock.now() + timeout
        while self.clock.now() < deadline:
            if all(h.state == ALIVE for h in self.handles):
                return True
            if self._monitor is None:
                self.check_health()
            self.clock.sleep(min(self.heartbeat_interval, 0.05))
        return all(h.state == ALIVE for h in self.handles)

    # -- accounting -----------------------------------------------------------

    def alive_workers(self) -> List[int]:
        return [h.worker_id for h in self.handles if h.state == ALIVE]

    def stats(self) -> Dict[str, Any]:
        return {
            "workers": self.workers,
            "alive": len(self.alive_workers()),
            "restarts": self.restarts_total,
            "failures": self.failures_total,
            "states": {h.worker_id: h.state for h in self.handles},
            "epochs": {h.worker_id: h.epoch for h in self.handles},
            "lookups_served": {
                h.worker_id: h.lookups_served for h in self.handles
            },
            "ring_lookups": {
                h.worker_id: h.ring_lookups for h in self.handles
            },
            "pipe_lookups": {
                h.worker_id: h.pipe_lookups for h in self.handles
            },
        }
