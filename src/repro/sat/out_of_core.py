"""Out-of-core SAT: matrices larger than (simulated) device memory.

Section VIII notes the GTX 780 Ti's 3 GB global memory caps the evaluation
at 18K x 18K. This extension lifts that cap the way a production pipeline
would: stream the matrix through in horizontal *bands*, carrying the last
SAT row of each band into the next. Correctness rests on the same identity
the block algorithms use — for rows below a finished band,

    F(i, j) = bandSAT(i, j) + F(band_top - 1, j)

because everything above the band contributes column-wise totals only.
Each band can itself be computed by any in-core algorithm (including the
HMM-simulated ones), so the carry row plays exactly the role of 1R1W's
``AuxB`` boundary buffer, stretched across device-memory generations.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Tuple

import numpy as np

from ..errors import ShapeError
from .reference import sat_reference

#: A band provider maps (row0, row1) -> the matrix rows [row0, row1).
BandProvider = Callable[[int, int], np.ndarray]


def sat_streamed(
    provider: BandProvider,
    shape: Tuple[int, int],
    band_rows: int,
    *,
    band_sat: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield ``(row0, sat_band)`` pairs covering the full SAT, in order.

    Parameters
    ----------
    provider:
        Called once per band with ``(row0, row1)``; must return rows
        ``[row0, row1)`` of the input. This indirection is what makes the
        input "larger than memory" — only one band is resident at a time.
    shape:
        Full matrix shape ``(n_rows, n_cols)``.
    band_rows:
        Rows per band (the memory budget).
    band_sat:
        In-core SAT kernel applied to each band; defaults to the numpy
        oracle. Pass e.g. ``lambda b: compute_sat(b, ...).sat`` to run the
        bands on the simulated HMM (bands must then be square-compatible).
    """
    n_rows, n_cols = shape
    if n_rows <= 0 or n_cols <= 0:
        raise ShapeError(f"matrix shape must be positive, got {shape}")
    if band_rows <= 0:
        raise ShapeError(f"band_rows must be positive, got {band_rows}")
    if band_sat is None:
        band_sat = sat_reference
    carry = np.zeros(n_cols)
    for row0 in range(0, n_rows, band_rows):
        row1 = min(row0 + band_rows, n_rows)
        band = np.asarray(provider(row0, row1), dtype=np.float64)
        if band.shape != (row1 - row0, n_cols):
            raise ShapeError(
                f"provider returned shape {band.shape} for rows [{row0}, {row1}) "
                f"of a {shape} matrix"
            )
        sat_band = np.asarray(band_sat(band), dtype=np.float64)
        if sat_band.shape != band.shape:
            raise ShapeError("band_sat must preserve the band's shape")
        sat_band = sat_band + carry[None, :]
        carry = sat_band[-1].copy()
        yield row0, sat_band


def sat_out_of_core(
    a: np.ndarray,
    band_rows: int,
    *,
    band_sat: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> np.ndarray:
    """Convenience wrapper: stream an in-memory matrix band by band.

    Exists mainly for testing and demonstration — with the matrix already
    resident it is equivalent to :func:`sat_reference`, but it exercises
    the exact carry logic a disk/network-backed provider would use.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ShapeError(f"SAT input must be 2-D, got ndim={a.ndim}")
    out = np.empty_like(a)
    for row0, sat_band in sat_streamed(
        lambda r0, r1: a[r0:r1], a.shape, band_rows, band_sat=band_sat
    ):
        out[row0 : row0 + sat_band.shape[0]] = sat_band
    return out


class PeakMemoryMeter:
    """Wraps a provider and records the largest band served (in elements).

    Used by tests to prove the streaming pipeline's residency really is
    ``O(band_rows * n_cols)`` rather than ``O(n^2)``.
    """

    def __init__(self, a: np.ndarray):
        self._a = np.asarray(a)
        self.peak_elements = 0
        self.bands_served = 0

    def __call__(self, row0: int, row1: int) -> np.ndarray:
        band = self._a[row0:row1]
        self.peak_elements = max(self.peak_elements, band.size)
        self.bands_served += 1
        return band
