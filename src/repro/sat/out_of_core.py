"""Out-of-core SAT: matrices larger than (simulated) device memory.

Section VIII notes the GTX 780 Ti's 3 GB global memory caps the evaluation
at 18K x 18K. This extension lifts that cap the way a production pipeline
would: stream the matrix through in horizontal *bands*, carrying the last
SAT row of each band into the next. Correctness rests on the same identity
the block algorithms use — for rows below a finished band,

    F(i, j) = bandSAT(i, j) + F(band_top - 1, j)

because everything above the band contributes column-wise totals only.
Each band can itself be computed by any in-core algorithm (including the
HMM-simulated ones), so the carry row plays exactly the role of 1R1W's
``AuxB`` boundary buffer, stretched across device-memory generations.
"""

from __future__ import annotations

import dataclasses
import logging
import time
import zlib
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CorruptionDetected, RetryExhausted, ReproError, ShapeError, TransientFault
from ..obs import runtime as obs
from ..util.backoff import Clock, ExponentialBackoff, FakeClock
from ..util.validation import require_finite
from .reference import sat_reference

logger = logging.getLogger("repro.sat.out_of_core")

#: A band provider maps (row0, row1) -> the matrix rows [row0, row1).
BandProvider = Callable[[int, int], np.ndarray]


def _band_spans(n_rows: int, band_rows: int, start_row: int = 0) -> List[Tuple[int, int]]:
    """The ``(row0, row1)`` spans a banded stream visits, in order."""
    return [
        (row0, min(row0 + band_rows, n_rows))
        for row0 in range(start_row, n_rows, band_rows)
    ]


class BandPrefetcher:
    """Double-buffered band fetcher: fetch band ``i+1`` while ``i`` computes.

    A single worker thread runs the provider ahead of the consumer, with
    at most ``depth`` fetched-but-unconsumed bands in flight (a bounded
    queue, so residency stays ``O((depth + 1) * band_rows * n_cols)``
    rather than growing to the whole matrix). Provider exceptions —
    including :class:`~repro.errors.RetryExhausted` raised after a wrapped
    :class:`ResilientBandProvider` burns its retry budget — are captured
    by the future and re-raised at the consumer's ``fetch`` call for the
    failing band, so pipelining never changes *which* band an error is
    attributed to.
    """

    def __init__(
        self,
        provider: BandProvider,
        spans: Sequence[Tuple[int, int]],
        depth: int = 1,
    ):
        if depth < 1:
            raise ShapeError(f"prefetch depth must be >= 1, got {depth}")
        self._provider = provider
        self._spans = list(spans)
        self._depth = depth
        self._next = 0
        self._pending: "deque[Future]" = deque()
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="band-prefetch"
        )
        for _ in range(min(depth, len(self._spans))):
            self._submit()

    def _submit(self) -> None:
        row0, row1 = self._spans[self._next]
        self._pending.append(self._pool.submit(self._provider, row0, row1))
        self._next += 1
        obs.inc("band_prefetches_total")

    def fetch(self, row0: int, row1: int) -> np.ndarray:
        """Return the band for the next span (must be called in order)."""
        expected = self._spans[self._next - len(self._pending)]
        if (row0, row1) != expected:
            raise ShapeError(
                f"prefetcher serves spans in order; expected {expected}, "
                f"got {(row0, row1)}"
            )
        future = self._pending.popleft()
        if self._next < len(self._spans):
            self._submit()
        if obs.is_enabled():
            # How long the consumer blocks here is the part of fetch
            # latency prefetching failed to hide behind compute.
            t0 = time.perf_counter()
            band = future.result()
            obs.observe("band_fetch_wait_seconds", time.perf_counter() - t0)
            return band
        return future.result()

    def close(self) -> None:
        """Stop prefetching and drop any bands still in flight."""
        for future in self._pending:
            future.cancel()
        self._pending.clear()
        self._pool.shutdown(wait=False, cancel_futures=True)


def hmm_band_sat(
    algorithm="1R1W",
    params=None,
    *,
    engine=None,
    fast: bool = True,
    **algo_kwargs,
) -> Callable[[np.ndarray], np.ndarray]:
    """Build a ``band_sat`` that runs every band through ONE session engine.

    Previously the documented recipe for HMM-computed bands —
    ``lambda b: compute_sat(b, ...).sat`` — hit whatever engine the call
    defaulted to, and a caller wiring up a private engine per band
    recompiled the same plan for every band of the stream. This factory
    fixes the session wiring: it owns a single
    :class:`~repro.machine.engine.ExecutionEngine` for the stream's
    lifetime, so every band of the same height resolves to one cached
    plan (bands of a regular stream all share ``(rows, cols)`` except
    possibly the last), and ``fast=True`` (default) executes warm bands
    through the fused batched backend.

    ``algorithm`` is a registry name (kwargs forwarded, e.g. ``p=`` for
    kR1W) or an algorithm instance. The returned callable exposes the
    engine as ``.engine`` so callers can assert cache behavior.
    """
    from ..machine.engine import ExecutionEngine, PlanCache
    from ..machine.params import MachineParams
    from .registry import make_algorithm

    algo = (
        make_algorithm(algorithm, **algo_kwargs)
        if isinstance(algorithm, str)
        else algorithm
    )
    if params is None:
        params = MachineParams()
    if engine is None:
        engine = ExecutionEngine(cache=PlanCache())

    def band_sat(band: np.ndarray) -> np.ndarray:
        return algo.compute(band, params, engine=engine, fast=fast).sat

    band_sat.engine = engine
    return band_sat


def sat_streamed(
    provider: BandProvider,
    shape: Tuple[int, int],
    band_rows: int,
    *,
    band_sat: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    copy_bands: bool = True,
    prefetch_depth: int = 0,
) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield ``(row0, sat_band)`` pairs covering the full SAT, in order.

    Parameters
    ----------
    provider:
        Called once per band with ``(row0, row1)``; must return rows
        ``[row0, row1)`` of the input. This indirection is what makes the
        input "larger than memory" — only one band (plus any prefetched
        bands) is resident at a time.
    shape:
        Full matrix shape ``(n_rows, n_cols)``.
    band_rows:
        Rows per band (the memory budget).
    band_sat:
        In-core SAT kernel applied to each band; defaults to the numpy
        oracle. Pass :func:`hmm_band_sat` to run the bands on the
        simulated HMM through one session engine (every same-height band
        reuses one cached plan; band shapes must satisfy the chosen
        algorithm's block-multiple/rectangular requirements).
    copy_bands:
        By default every band is defensively copied, because providers
        commonly return views of backing storage and a ``band_sat`` that
        works in place must never reach back through the view. Providers
        that hand over ownership of each band (fresh arrays from disk or
        network reads) can pass ``False`` for a zero-copy hand-off, which
        halves the stream's peak residency — with the documented caveat
        that an in-place ``band_sat`` then mutates the provider's array.
    prefetch_depth:
        ``0`` (default) fetches serially. ``>= 1`` overlaps data movement
        with compute: a worker thread runs the provider up to this many
        bands ahead while the current band's SAT is computed — the
        double-buffering that hides fetch latency behind compute, exactly
        as the GPU algorithms hide global-memory latency behind arithmetic.
    """
    n_rows, n_cols = shape
    if n_rows <= 0 or n_cols <= 0:
        raise ShapeError(f"matrix shape must be positive, got {shape}")
    if band_rows <= 0:
        raise ShapeError(f"band_rows must be positive, got {band_rows}")
    if band_sat is None:
        band_sat = sat_reference
    spans = _band_spans(n_rows, band_rows)
    prefetcher: Optional[BandPrefetcher] = None
    fetch: BandProvider = provider
    if prefetch_depth > 0:
        prefetcher = BandPrefetcher(provider, spans, depth=prefetch_depth)
        fetch = prefetcher.fetch
    try:
        carry = np.zeros(n_cols)
        for row0, row1 in spans:
            raw = fetch(row0, row1)
            if copy_bands:
                band = np.array(raw, dtype=np.float64, copy=True)
            else:
                band = np.asarray(raw, dtype=np.float64)
            if band.shape != (row1 - row0, n_cols):
                raise ShapeError(
                    f"provider returned shape {band.shape} for rows "
                    f"[{row0}, {row1}) of a {shape} matrix"
                )
            require_finite(band, what=f"provider band rows [{row0}, {row1})")
            with obs.span("band_compute", row0=row0, rows=row1 - row0):
                sat_band = np.asarray(band_sat(band), dtype=np.float64)
            if sat_band.shape != band.shape:
                raise ShapeError("band_sat must preserve the band's shape")
            sat_band = sat_band + carry[None, :]
            # This also validates the next carry row — it is sat_band's
            # last row.
            require_finite(sat_band, what=f"SAT band rows [{row0}, {row1})")
            carry = sat_band[-1].copy()
            obs.inc("stream_bands_total", resilient="false")
            yield row0, sat_band
    finally:
        if prefetcher is not None:
            prefetcher.close()


def sat_out_of_core(
    a: np.ndarray,
    band_rows: int,
    *,
    band_sat: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> np.ndarray:
    """Convenience wrapper: stream an in-memory matrix band by band.

    Exists mainly for testing and demonstration — with the matrix already
    resident it is equivalent to :func:`sat_reference`, but it exercises
    the exact carry logic a disk/network-backed provider would use.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ShapeError(f"SAT input must be 2-D, got ndim={a.ndim}")
    out = np.empty_like(a)
    for row0, sat_band in sat_streamed(
        lambda r0, r1: a[r0:r1], a.shape, band_rows, band_sat=band_sat
    ):
        out[row0 : row0 + sat_band.shape[0]] = sat_band
    return out


# --- resilience layer ---------------------------------------------------------


def carry_checksum(carry: np.ndarray) -> int:
    """CRC-32 of a carry row's bytes — the streaming layer's integrity tag.

    The carry row is the only state threaded between bands; a corrupted
    carry poisons every band after it, so it is the one thing worth
    checksumming at each hand-off.
    """
    arr = np.ascontiguousarray(np.asarray(carry, dtype=np.float64))
    return zlib.crc32(arr.tobytes())


@dataclasses.dataclass(frozen=True)
class StreamCheckpoint:
    """Resumable position of a banded SAT stream.

    ``row0`` is the first row *not yet* computed; ``carry`` is the
    finished SAT's row ``row0 - 1`` (zeros at ``row0 == 0``). ``checksum``
    guards the carry across whatever storage the checkpoint lived in.
    """

    row0: int
    carry: np.ndarray
    checksum: int

    @classmethod
    def initial(cls, n_cols: int) -> "StreamCheckpoint":
        carry = np.zeros(n_cols)
        return cls(row0=0, carry=carry, checksum=carry_checksum(carry))

    @classmethod
    def at(cls, row0: int, carry: np.ndarray) -> "StreamCheckpoint":
        carry = np.array(carry, dtype=np.float64, copy=True)
        return cls(row0=row0, carry=carry, checksum=carry_checksum(carry))

    def restore(self) -> np.ndarray:
        """Validate and return a private copy of the carry row."""
        carry = np.asarray(self.carry, dtype=np.float64)
        if carry.ndim != 1:
            raise ShapeError(f"checkpoint carry must be 1-D, got ndim={carry.ndim}")
        if carry_checksum(carry) != self.checksum:
            raise CorruptionDetected(
                f"checkpoint at row {self.row0} failed its carry checksum "
                f"(expected {self.checksum}, got {carry_checksum(carry)})"
            )
        require_finite(carry, what=f"checkpoint carry at row {self.row0}")
        return carry.copy()


@dataclasses.dataclass
class StreamReport:
    """What the resilient stream survived — surfaced, not just logged."""

    bands_completed: int = 0
    #: band_sat invocations that raised a ReproError and were retried.
    band_sat_retries: int = 0
    #: ``row0`` of every band that fell back to the numpy oracle.
    degraded_bands: List[int] = dataclasses.field(default_factory=list)
    #: ``row0`` the stream resumed from (``None`` for a fresh run).
    resumed_at: Optional[int] = None
    checkpoints_written: int = 0
    #: Human-readable fault log, in order.
    events: List[str] = dataclasses.field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return bool(self.degraded_bands)

    def note(self, message: str) -> None:
        self.events.append(message)
        logger.warning("%s", message)

    def summary(self) -> str:
        return (
            f"bands={self.bands_completed}, band_sat_retries={self.band_sat_retries}, "
            f"degraded={len(self.degraded_bands)}, "
            f"resumed_at={self.resumed_at}, checkpoints={self.checkpoints_written}"
        )


class ResilientBandProvider:
    """Wraps a flaky provider with bounded retry and read verification.

    * :class:`~repro.errors.TransientFault` from the provider is retried
      with deterministic exponential backoff on an injected clock (a
      :class:`~repro.util.backoff.FakeClock` by default — no real
      sleeping, ever, unless a caller opts into a real clock).
    * With ``verify_reads`` (default), every band is fetched twice and the
      two copies compared; a disagreement means a transient corruption and
      is retried too. Redundant fetching doubles traffic but is the only
      detector that catches *finite* garbage, not just NaN poison.
    * A band containing non-finite values in both fetches raises
      :class:`~repro.errors.CorruptionDetected`, which is also retried —
      a deterministic corruption thus ends in
      :class:`~repro.errors.RetryExhausted` rather than an infinite loop.
    """

    def __init__(
        self,
        provider: BandProvider,
        *,
        max_retries: int = 3,
        backoff: Optional[ExponentialBackoff] = None,
        clock: Optional[Clock] = None,
        verify_reads: bool = True,
    ):
        if max_retries < 0:
            raise ShapeError(f"max_retries must be >= 0, got {max_retries}")
        self._provider = provider
        self.max_retries = max_retries
        self.backoff = backoff if backoff is not None else ExponentialBackoff()
        self.clock = clock if clock is not None else FakeClock()
        self.verify_reads = verify_reads
        self.fetches = 0
        self.retries = 0
        self.corruptions_detected = 0

    def _fetch(self, row0: int, row1: int) -> np.ndarray:
        self.fetches += 1
        return np.array(self._provider(row0, row1), dtype=np.float64, copy=True)

    def _attempt(self, row0: int, row1: int) -> np.ndarray:
        band = self._fetch(row0, row1)
        if self.verify_reads:
            again = self._fetch(row0, row1)
            same = band.shape == again.shape and np.array_equal(
                band, again, equal_nan=True
            )
            if not same:
                self.corruptions_detected += 1
                raise CorruptionDetected(
                    f"band [{row0}, {row1}): redundant fetches disagree — "
                    "transient corruption"
                )
        require_finite(band, what=f"band [{row0}, {row1})")
        return band

    def __call__(self, row0: int, row1: int) -> np.ndarray:
        for attempt in range(self.max_retries + 1):
            try:
                return self._attempt(row0, row1)
            except (TransientFault, CorruptionDetected) as fault:
                if attempt == self.max_retries:
                    raise RetryExhausted(
                        f"band [{row0}, {row1}) still failing after "
                        f"{attempt + 1} attempt(s): {fault}"
                    ) from fault
                self.retries += 1
                delay = self.backoff.pause(self.clock, attempt)
                logger.warning(
                    "band [%d, %d) attempt %d failed (%s: %s); retrying after %gs",
                    row0, row1, attempt, type(fault).__name__, fault, delay,
                )
        raise AssertionError("unreachable")  # pragma: no cover


def sat_streamed_resilient(
    provider: BandProvider,
    shape: Tuple[int, int],
    band_rows: int,
    *,
    band_sat: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    oracle_fallback: bool = True,
    max_band_attempts: int = 3,
    backoff: Optional[ExponentialBackoff] = None,
    clock: Optional[Clock] = None,
    checkpoint: Optional[StreamCheckpoint] = None,
    on_checkpoint: Optional[Callable[[StreamCheckpoint], None]] = None,
    report: Optional[StreamReport] = None,
    copy_bands: bool = True,
    prefetch_depth: int = 0,
) -> Iterator[Tuple[int, np.ndarray]]:
    """:func:`sat_streamed` hardened against faulty kernels and interruptions.

    Differences from the plain stream:

    * ``band_sat`` failures (any :class:`~repro.errors.ReproError`, e.g. a
      fault-injected HMM run exhausting its retries) are retried up to
      ``max_band_attempts`` times with deterministic backoff; if the band
      still fails, the computation **degrades** to the numpy oracle for
      that band (``oracle_fallback``), recording it in ``report`` — or
      raises :class:`~repro.errors.RetryExhausted` when fallback is off.
    * after each band a :class:`StreamCheckpoint` ``(row0, carry,
      checksum)`` is handed to ``on_checkpoint``; an interrupted stream
      resumes from its last checkpoint via ``checkpoint=`` without
      recomputing (or re-fetching) finished bands.
    * the carry row's integrity is checksum-verified on restore, so a
      corrupted checkpoint raises
      :class:`~repro.errors.CorruptionDetected` instead of silently
      poisoning every remaining band.

    Each ``band_sat`` attempt receives a private copy of the band, so a
    kernel that mutates its input cannot corrupt the retry or the oracle
    fallback (band retries therefore stay safe even with
    ``copy_bands=False``). ``prefetch_depth >= 1`` overlaps band fetching
    with band computation exactly as in :func:`sat_streamed`; the provider
    (including a wrapping :class:`ResilientBandProvider` with its retry
    and backoff machinery) then runs on the prefetch thread, and a fetch
    that exhausts its retries surfaces its
    :class:`~repro.errors.RetryExhausted` when the stream reaches the
    failing band. A resumed stream prefetches only the remaining bands.
    """
    n_rows, n_cols = shape
    if n_rows <= 0 or n_cols <= 0:
        raise ShapeError(f"matrix shape must be positive, got {shape}")
    if band_rows <= 0:
        raise ShapeError(f"band_rows must be positive, got {band_rows}")
    if max_band_attempts < 1:
        raise ShapeError(f"max_band_attempts must be >= 1, got {max_band_attempts}")
    if band_sat is None:
        band_sat = sat_reference
    if backoff is None:
        backoff = ExponentialBackoff()
    if clock is None:
        clock = FakeClock()
    if report is None:
        report = StreamReport()

    start_row = 0
    carry = np.zeros(n_cols)
    if checkpoint is not None:
        restored = checkpoint.restore()
        if restored.shape != (n_cols,):
            raise ShapeError(
                f"checkpoint carry has {restored.shape[0]} columns, "
                f"stream has {n_cols}"
            )
        if not 0 <= checkpoint.row0 <= n_rows:
            raise ShapeError(
                f"checkpoint row {checkpoint.row0} outside matrix of {n_rows} rows"
            )
        start_row, carry = checkpoint.row0, restored
        report.resumed_at = checkpoint.row0
        report.note(f"resumed from checkpoint at row {checkpoint.row0}")

    spans = _band_spans(n_rows, band_rows, start_row)
    prefetcher: Optional[BandPrefetcher] = None
    fetch: BandProvider = provider
    if prefetch_depth > 0:
        prefetcher = BandPrefetcher(provider, spans, depth=prefetch_depth)
        fetch = prefetcher.fetch
    try:
        for row0, row1 in spans:
            raw = fetch(row0, row1)
            if copy_bands:
                band = np.array(raw, dtype=np.float64, copy=True)
            else:
                band = np.asarray(raw, dtype=np.float64)
            if band.shape != (row1 - row0, n_cols):
                raise ShapeError(
                    f"provider returned shape {band.shape} for rows "
                    f"[{row0}, {row1}) of a {shape} matrix"
                )
            require_finite(band, what=f"provider band rows [{row0}, {row1})")

            sat_band: Optional[np.ndarray] = None
            last_fault: Optional[ReproError] = None
            for attempt in range(max_band_attempts):
                try:
                    with obs.span(
                        "band_compute", row0=row0, rows=row1 - row0, attempt=attempt
                    ):
                        candidate = np.asarray(
                            band_sat(band.copy()), dtype=np.float64
                        )
                    if candidate.shape != band.shape:
                        raise ShapeError("band_sat must preserve the band's shape")
                    require_finite(
                        candidate, what=f"band_sat output for rows [{row0}, {row1})"
                    )
                    sat_band = candidate
                    break
                except ReproError as fault:
                    last_fault = fault
                    if attempt + 1 < max_band_attempts:
                        report.band_sat_retries += 1
                        obs.inc("stream_band_retries_total")
                        delay = backoff.pause(clock, attempt)
                        report.note(
                            f"band [{row0}, {row1}) attempt {attempt} failed "
                            f"({type(fault).__name__}: {fault}); retrying after {delay}s"
                        )
            if sat_band is None:
                if oracle_fallback:
                    report.degraded_bands.append(row0)
                    obs.inc("stream_degraded_bands_total")
                    report.note(
                        f"band [{row0}, {row1}) failed {max_band_attempts} attempts "
                        f"({type(last_fault).__name__}); degrading to numpy oracle"
                    )
                    sat_band = sat_reference(band)
                else:
                    raise RetryExhausted(
                        f"band [{row0}, {row1}) failed {max_band_attempts} "
                        f"band_sat attempt(s): {last_fault}"
                    ) from last_fault

            sat_band = sat_band + carry[None, :]
            require_finite(sat_band, what=f"SAT band rows [{row0}, {row1})")
            carry = sat_band[-1].copy()
            report.bands_completed += 1
            obs.inc("stream_bands_total", resilient="true")
            if on_checkpoint is not None:
                on_checkpoint(StreamCheckpoint.at(row1, carry))
                report.checkpoints_written += 1
                obs.inc("stream_checkpoints_total")
            yield row0, sat_band
    finally:
        if prefetcher is not None:
            prefetcher.close()


def sat_out_of_core_resilient(
    a: np.ndarray,
    band_rows: int,
    **kwargs,
) -> Tuple[np.ndarray, StreamReport]:
    """Resilient convenience wrapper; returns ``(sat, report)``.

    Accepts every :func:`sat_streamed_resilient` keyword. The in-memory
    matrix stands in for whatever disk/network source a real deployment
    streams from.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ShapeError(f"SAT input must be 2-D, got ndim={a.ndim}")
    if kwargs.get("checkpoint") is not None:
        # A resumed stream only yields the *remaining* bands; this wrapper
        # promises the full SAT, so resume callers must drive
        # sat_streamed_resilient themselves (keeping their earlier bands).
        raise ShapeError("sat_out_of_core_resilient cannot resume; use sat_streamed_resilient")
    report = kwargs.pop("report", None) or StreamReport()
    out = np.empty_like(a)
    for row0, sat_band in sat_streamed_resilient(
        lambda r0, r1: a[r0:r1], a.shape, band_rows, report=report, **kwargs
    ):
        out[row0 : row0 + sat_band.shape[0]] = sat_band
    return out, report


class PeakMemoryMeter:
    """Wraps a provider and records the largest band served (in elements).

    Used by tests to prove the streaming pipeline's residency really is
    ``O(band_rows * n_cols)`` rather than ``O(n^2)``.
    """

    def __init__(self, a: np.ndarray):
        self._a = np.asarray(a)
        self.peak_elements = 0
        self.bands_served = 0

    def __call__(self, row0: int, row1: int) -> np.ndarray:
        band = self._a[row0:row1]
        self.peak_elements = max(self.peak_elements, band.size)
        self.bands_served += 1
        return band
