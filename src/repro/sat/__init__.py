"""Summed-area-table algorithms on the asynchronous HMM.

The paper's full algorithm family, all running as real programs on the
macro executor and verified against the :func:`sat_reference` oracle:

========  ==============================================================
2R2W      column scan + stride row scan (Section IV)
4R4W      two scans around two coalesced transposes (Section IV)
4R1W      element-wise anti-diagonal recurrence, Formula (1) (Section VI)
2R1W      block sums / scans / fix-up with recursion (Section V)
1R1W      block anti-diagonal stages — memory-access optimal (Section VI)
kR1W      2R1W corner triangles around a 1R1W band (Section VII);
          ``1.25R1W`` is its ``p = 1/2`` instance
========  ==============================================================

plus the sequential CPU baselines of Section VIII and the rectangle-sum
query machinery that motivates SATs in the first place.
"""

from .algo_1r1w import OneReadOneWrite
from .algo_2r1w import TwoReadOneWrite, recursion_depth
from .algo_2r2w import TwoReadTwoWrite
from .algo_4r1w import FourReadOneWrite
from .algo_4r4w import FourReadFourWrite
from .algo_kr1w import CombinedKR1W, OnePointTwoFiveR1W
from .base import MATRIX_BUFFER, SATAlgorithm, SATResult
from .batch import BatchSession, batch_counters, sat_batch, sat_batch_list
from .cpu import CPU_ALGORITHMS, cpu_2r2w, cpu_4r1w, cpu_4r1w_strict, cpu_numpy_2r2w
from .reference import (
    assert_sat_equal,
    rectangle_sum,
    rectangle_sums,
    sat_reference,
    undo_sat,
)
from .out_of_core import (
    BandPrefetcher,
    PeakMemoryMeter,
    ResilientBandProvider,
    StreamCheckpoint,
    StreamReport,
    carry_checksum,
    hmm_band_sat,
    sat_out_of_core,
    sat_out_of_core_resilient,
    sat_streamed,
    sat_streamed_resilient,
)
from .registry import ALGORITHM_NAMES, describe, list_algorithms, make_algorithm
from .tuning import TuningResult, candidate_ps, tune_analytic, tune_measured

__all__ = [
    "ALGORITHM_NAMES",
    "CPU_ALGORITHMS",
    "BandPrefetcher",
    "BatchSession",
    "CombinedKR1W",
    "FourReadFourWrite",
    "FourReadOneWrite",
    "MATRIX_BUFFER",
    "OnePointTwoFiveR1W",
    "PeakMemoryMeter",
    "ResilientBandProvider",
    "StreamCheckpoint",
    "StreamReport",
    "batch_counters",
    "carry_checksum",
    "hmm_band_sat",
    "sat_batch",
    "sat_batch_list",
    "sat_out_of_core",
    "sat_out_of_core_resilient",
    "sat_streamed",
    "sat_streamed_resilient",
    "OneReadOneWrite",
    "SATAlgorithm",
    "SATResult",
    "TuningResult",
    "TwoReadOneWrite",
    "TwoReadTwoWrite",
    "assert_sat_equal",
    "candidate_ps",
    "cpu_2r2w",
    "cpu_4r1w",
    "cpu_4r1w_strict",
    "cpu_numpy_2r2w",
    "describe",
    "list_algorithms",
    "make_algorithm",
    "recursion_depth",
    "rectangle_sum",
    "rectangle_sums",
    "sat_reference",
    "tune_analytic",
    "tune_measured",
    "undo_sat",
]
