"""Name-based lookup of the SAT algorithms, mirroring Table II's rows."""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List

from ..errors import ConfigurationError
from .algo_1r1w import OneReadOneWrite
from .algo_2r1w import TwoReadOneWrite
from .algo_2r2w import TwoReadTwoWrite
from .algo_4r1w import FourReadOneWrite
from .algo_4r4w import FourReadFourWrite
from .algo_kr1w import CombinedKR1W, OnePointTwoFiveR1W
from .base import SATAlgorithm

#: Factories, not instances — algorithms carry per-run state (snapshots).
_FACTORIES: Dict[str, Callable[[], SATAlgorithm]] = {
    "2R2W": TwoReadTwoWrite,
    "4R4W": FourReadFourWrite,
    "4R1W": FourReadOneWrite,
    "2R1W": TwoReadOneWrite,
    "1R1W": OneReadOneWrite,
    "1.25R1W": OnePointTwoFiveR1W,
}

#: Table II's GPU algorithm order.
ALGORITHM_NAMES: List[str] = list(_FACTORIES)


def make_algorithm(name: str, **kwargs) -> SATAlgorithm:
    """Instantiate an algorithm by its Table II name.

    ``kR1W`` additionally accepts ``p=<float>`` (e.g. ``kR1W`` with
    ``p=0.25``); it is reachable as ``make_algorithm("kR1W", p=0.25)``.
    """
    if name == "kR1W":
        factory: Callable[..., SATAlgorithm] = CombinedKR1W
    else:
        try:
            factory = _FACTORIES[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown SAT algorithm {name!r}; choose from {ALGORITHM_NAMES + ['kR1W']}"
            ) from None
    _check_kwargs(name, factory, kwargs)
    try:
        return factory(**kwargs)
    except TypeError as exc:
        # Anything signature-shaped that slipped past the explicit check
        # (e.g. a missing required argument) is still a config problem.
        raise ConfigurationError(
            f"invalid arguments for SAT algorithm {name!r}: {exc}"
        ) from exc


def _check_kwargs(name: str, factory: Callable[..., SATAlgorithm], kwargs: Dict) -> None:
    """Reject keyword arguments the factory cannot accept, by name.

    Without this, ``make_algorithm("1R1W", p=0.5)`` escapes as a raw
    ``TypeError`` from the constructor; callers catching
    :class:`~repro.errors.ReproError` (the package contract) never see it.
    """
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # builtins without introspectable signatures
        return
    parameters = signature.parameters.values()
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters):
        return
    accepted = {
        p.name
        for p in parameters
        if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
    }
    unexpected = sorted(set(kwargs) - accepted)
    if unexpected:
        raise ConfigurationError(
            f"SAT algorithm {name!r} does not accept argument(s) "
            f"{', '.join(repr(k) for k in unexpected)}; accepted: "
            f"{sorted(accepted) or 'none'}"
        )
