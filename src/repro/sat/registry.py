"""Name-based lookup of the SAT algorithms, mirroring Table II's rows."""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import ConfigurationError
from .algo_1r1w import OneReadOneWrite
from .algo_2r1w import TwoReadOneWrite
from .algo_2r2w import TwoReadTwoWrite
from .algo_4r1w import FourReadOneWrite
from .algo_4r4w import FourReadFourWrite
from .algo_kr1w import CombinedKR1W, OnePointTwoFiveR1W
from .base import SATAlgorithm

#: Factories, not instances — algorithms carry per-run state (snapshots).
_FACTORIES: Dict[str, Callable[[], SATAlgorithm]] = {
    "2R2W": TwoReadTwoWrite,
    "4R4W": FourReadFourWrite,
    "4R1W": FourReadOneWrite,
    "2R1W": TwoReadOneWrite,
    "1R1W": OneReadOneWrite,
    "1.25R1W": OnePointTwoFiveR1W,
}

#: Table II's GPU algorithm order.
ALGORITHM_NAMES: List[str] = list(_FACTORIES)


def make_algorithm(name: str, **kwargs) -> SATAlgorithm:
    """Instantiate an algorithm by its Table II name.

    ``kR1W`` additionally accepts ``p=<float>`` (e.g. ``kR1W`` with
    ``p=0.25``); it is reachable as ``make_algorithm("kR1W", p=0.25)``.
    """
    if name == "kR1W":
        return CombinedKR1W(**kwargs)
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown SAT algorithm {name!r}; choose from {ALGORITHM_NAMES + ['kR1W']}"
        ) from None
    return factory(**kwargs)
