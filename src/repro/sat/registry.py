"""Name-based lookup of the SAT algorithms, mirroring Table II's rows."""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List

from ..errors import ConfigurationError
from .algo_1r1w import OneReadOneWrite
from .algo_2r1w import TwoReadOneWrite
from .algo_2r2w import TwoReadTwoWrite
from .algo_4r1w import FourReadOneWrite
from .algo_4r4w import FourReadFourWrite
from .algo_kr1w import CombinedKR1W, OnePointTwoFiveR1W
from .base import SATAlgorithm

#: Factories, not instances — algorithms carry per-run state (snapshots).
_FACTORIES: Dict[str, Callable[[], SATAlgorithm]] = {
    "2R2W": TwoReadTwoWrite,
    "4R4W": FourReadFourWrite,
    "4R1W": FourReadOneWrite,
    "2R1W": TwoReadOneWrite,
    "1R1W": OneReadOneWrite,
    "1.25R1W": OnePointTwoFiveR1W,
}

#: Table II's GPU algorithm order.
ALGORITHM_NAMES: List[str] = list(_FACTORIES)


def list_algorithms(include_parametric: bool = True) -> List[str]:
    """Every name :func:`make_algorithm` accepts, in Table II order.

    ``include_parametric`` appends ``"kR1W"`` (the ``p``-parameterized
    family) and ``"auto"`` (the :mod:`repro.autotune` planner, which
    picks among the others per input) after the fixed Table II rows.
    """
    names = list(ALGORITHM_NAMES)
    if include_parametric:
        names.append("kR1W")
        names.append("auto")
    return names


def _accepted_kwargs(factory: Callable[..., SATAlgorithm]) -> List[str]:
    """Keyword arguments a factory's signature accepts (sorted)."""
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):
        return []
    return sorted(
        p.name
        for p in signature.parameters.values()
        if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
    )


def describe(name: str = None) -> Dict[str, Dict[str, object]]:
    """Structured metadata for one algorithm (or all of them).

    Maps each registry name to ``{"summary": <first docstring line>,
    "kwargs": [<accepted keyword arguments>]}`` — what a serving CLI
    needs to validate an algorithm choice (and explain the alternatives)
    up front, before a worker pool or a store is built. Unknown names
    raise :class:`~repro.errors.ConfigurationError` listing the valid
    choices, like :func:`make_algorithm`.
    """
    factories: Dict[str, Callable[..., SATAlgorithm]] = dict(_FACTORIES)
    factories["kR1W"] = CombinedKR1W
    factories["auto"] = _auto_factory()
    if name is not None:
        if name not in factories:
            raise ConfigurationError(
                f"unknown SAT algorithm {name!r}; choose from {list_algorithms()}"
            )
        factories = {name: factories[name]}
    out: Dict[str, Dict[str, object]] = {}
    for algo_name, factory in factories.items():
        doc = inspect.getdoc(factory) or ""
        out[algo_name] = {
            "summary": doc.splitlines()[0] if doc else "",
            "kwargs": _accepted_kwargs(factory),
        }
    return out


def _auto_factory() -> Callable[..., SATAlgorithm]:
    """The :mod:`repro.autotune` selector, imported lazily: autotune
    imports this registry to instantiate its delegates, so a module-level
    import here would be a cycle."""
    from ..autotune.auto import AutoSAT

    return AutoSAT


def make_algorithm(name: str, **kwargs) -> SATAlgorithm:
    """Instantiate an algorithm by its Table II name.

    ``kR1W`` additionally accepts ``p=<float>`` (e.g. ``kR1W`` with
    ``p=0.25``); it is reachable as ``make_algorithm("kR1W", p=0.25)``.
    ``"auto"`` returns the :mod:`repro.autotune` planner-backed selector,
    which picks among the concrete algorithms per input (accepts
    ``planner=`` and ``kind=``).
    """
    if name == "kR1W":
        factory: Callable[..., SATAlgorithm] = CombinedKR1W
    elif name == "auto":
        factory = _auto_factory()
    else:
        try:
            factory = _FACTORIES[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown SAT algorithm {name!r}; choose from "
                f"{ALGORITHM_NAMES + ['kR1W', 'auto']} "
                f"('auto' picks per input via the cost model)"
            ) from None
    _check_kwargs(name, factory, kwargs)
    try:
        return factory(**kwargs)
    except TypeError as exc:
        # Anything signature-shaped that slipped past the explicit check
        # (e.g. a missing required argument) is still a config problem.
        raise ConfigurationError(
            f"invalid arguments for SAT algorithm {name!r}: {exc}; "
            f"accepted: {_accepted_kwargs(factory) or 'none'}"
        ) from exc


def _check_kwargs(name: str, factory: Callable[..., SATAlgorithm], kwargs: Dict) -> None:
    """Reject keyword arguments the factory cannot accept, by name.

    Without this, ``make_algorithm("1R1W", p=0.5)`` escapes as a raw
    ``TypeError`` from the constructor; callers catching
    :class:`~repro.errors.ReproError` (the package contract) never see it.
    """
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # builtins without introspectable signatures
        return
    parameters = signature.parameters.values()
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters):
        return
    accepted = {
        p.name
        for p in parameters
        if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
    }
    unexpected = sorted(set(kwargs) - accepted)
    if unexpected:
        raise ConfigurationError(
            f"SAT algorithm {name!r} does not accept argument(s) "
            f"{', '.join(repr(k) for k in unexpected)}; accepted: "
            f"{sorted(accepted) or 'none'}"
        )
