"""Selection of kR1W's mixing parameter (Table II's best-``p`` row).

The paper evaluates every feasible ``p`` on hardware and reports the
fastest; here the search minimizes the cost model instead. Two searches
are provided: a measured one (runs the algorithm on the macro executor per
candidate — exact but slow) and an analytic one (evaluates the closed-form
cost of :mod:`repro.analysis.formulas` — instant, used for Table II's
18K-scale rows). Both exhibit the paper's qualitative finding: the optimal
``p`` shrinks as ``n`` grows, because the saved latency is ``O(p n/w * l)``
while the extra bandwidth is ``O(p^2 n^2 / w)``.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..machine.params import MachineParams
from .algo_kr1w import CombinedKR1W


@dataclasses.dataclass(frozen=True)
class TuningResult:
    """Best mixing parameter and the full sweep that found it."""

    best_p: float
    best_cost: float
    sweep: Tuple[Tuple[float, float], ...]  # (p, cost) pairs

    @property
    def best_k(self) -> float:
        return 1.0 + self.best_p**2


def candidate_ps(n: int, width: int, max_candidates: int = 33) -> List[float]:
    """The feasible mixing parameters: one per whole diagonal count.

    ``p`` only matters through ``t = round(p (m-1))``, so there are exactly
    ``m`` distinct behaviours; for large ``m`` the grid is thinned evenly.
    """
    m = n // width
    if m <= 1:
        return [0.0]
    ts = np.arange(m)
    ps = ts / (m - 1)
    if len(ps) > max_candidates:
        idx = np.unique(np.linspace(0, len(ps) - 1, max_candidates).astype(int))
        ps = ps[idx]
    return [float(p) for p in ps]


def tune_measured(
    matrix: np.ndarray,
    params: MachineParams,
    ps: Optional[Sequence[float]] = None,
) -> TuningResult:
    """Run kR1W for each candidate ``p`` and pick the lowest measured cost."""
    n = matrix.shape[0]
    if ps is None:
        ps = candidate_ps(n, params.width)
    sweep = []
    for p in ps:
        result = CombinedKR1W(p=p).compute(matrix, params)
        sweep.append((p, result.cost))
    best_p, best_cost = min(sweep, key=lambda pc: pc[1])
    return TuningResult(best_p=best_p, best_cost=best_cost, sweep=tuple(sweep))


def tune_analytic(
    n: int,
    params: MachineParams,
    cost_of: Optional[Callable[[float], float]] = None,
    ps: Optional[Sequence[float]] = None,
) -> TuningResult:
    """Pick ``p`` by minimizing an analytic cost function.

    ``cost_of(p)`` defaults to the kR1W closed form from
    :mod:`repro.analysis.formulas`.
    """
    if cost_of is None:
        from ..analysis.formulas import kr1w_cost

        def cost_of(p: float) -> float:
            return kr1w_cost(n, params, p)

    if ps is None:
        ps = candidate_ps(n, params.width, max_candidates=257)
    sweep = [(p, float(cost_of(p))) for p in ps]
    best_p, best_cost = min(sweep, key=lambda pc: pc[1])
    return TuningResult(best_p=best_p, best_cost=best_cost, sweep=tuple(sweep))
