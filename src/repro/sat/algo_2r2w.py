"""2R2W SAT algorithm (Section IV): the straightforward two-pass scan.

Phase 1 computes column-wise prefix sums with one thread per column —
fully coalesced. Phase 2 computes row-wise prefix sums with one thread per
row — every access is stride. One barrier separates the phases.

Measured traffic (Lemma 2, dominant terms): ``2 n^2`` coalesced accesses
(``n^2`` reads + ``n^2 - n`` writes in phase 1), ``2 n^2`` stride accesses
in phase 2, 1 barrier; cost ``2 n^2 / w + 2 n^2 + 2 l``. The ``2 n^2``
stride term dominates everything, which is why the paper measures 2R2W an
order of magnitude slower than the block algorithms (Table II).
"""

from __future__ import annotations

from ..machine.macro.executor import HMMExecutor
from .base import MATRIX_BUFFER, SATAlgorithm
from .scan import column_scan_tasks, row_scan_tasks_stride


class TwoReadTwoWrite(SATAlgorithm):
    """The 2R2W SAT algorithm (column scan, barrier, stride row scan).

    Accepts rectangular inputs: both passes work per-line and never couple
    the two dimensions.
    """

    name = "2R2W"
    supports_rectangular = True

    def _run(self, executor: HMMExecutor, rows: int, cols: int) -> None:
        w = executor.params.width
        executor.run_kernel(
            column_scan_tasks(MATRIX_BUFFER, rows, cols, w), label="column-scan"
        )
        executor.run_kernel(
            row_scan_tasks_stride(MATRIX_BUFFER, rows, cols, w),
            label="row-scan(stride)",
        )
