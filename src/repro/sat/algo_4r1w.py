"""4R1W SAT algorithm (Section VI): the element-wise diagonal recurrence.

Formula (1): ``s[i][j] = a[i][j] + s[i][j-1] + s[i-1][j] - s[i-1][j-1]``.
Evaluating it along anti-diagonals makes every stage's elements
independent: Stage ``k`` (``0 <= k <= 2n - 2``) computes all ``s[i][j]``
with ``i + j == k``, reading already-final neighbors (Figure 10). The
computation is in place — ``a[i][j]`` is only overwritten at its own
stage.

Every access is scattered (anti-diagonal elements are ``n - 1`` words
apart), so all traffic is stride: up to 4 reads and 1 write per element,
``5 n^2`` stride ops total, with a barrier after every one of the
``2n - 1`` stages (Lemma 5: cost ``~5 n^2 + 2 n l``). Both the stride
traffic and the kernel-launch latency are maximal — the paper measures
this as by far the slowest GPU algorithm, and this reproduction's model
agrees.

The class exposes ``snapshot_after_stage`` so the Figure 10 benchmark can
show the half-computed matrix exactly as the paper draws it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..machine.engine.fused import ScatterStageSpec, attach_fused_spec
from ..machine.macro.executor import BlockContext, HMMExecutor
from .base import MATRIX_BUFFER, SATAlgorithm


class FourReadOneWrite(SATAlgorithm):
    """The 4R1W SAT algorithm (anti-diagonal evaluation of Formula (1))."""

    name = "4R1W"
    requires_block_multiple = False
    supports_rectangular = True

    def __init__(self, snapshot_after_stage: Optional[int] = None) -> None:
        self.snapshot_after_stage = snapshot_after_stage
        self.snapshot: Optional[np.ndarray] = None

    @property
    def plan_safe(self) -> bool:
        # Capturing a mid-run snapshot reads global memory between
        # kernels, which a reusable plan cannot express.
        return self.snapshot_after_stage is None

    def _stage_task(self, rows: int, cols: int, k: int, chunk: int):
        """One block task evaluating Formula (1) on a ``w``-element chunk of
        anti-diagonal ``k`` (one thread per element, ``w`` threads per block,
        matching the paper's thread layout)."""

        def task(ctx: BlockContext) -> None:
            w = ctx.params.width
            i_lo = max(0, k - (cols - 1))
            i_hi = min(k, rows - 1)
            start = i_lo + chunk * w
            i = np.arange(start, min(start + w, i_hi + 1))
            j = k - i
            s = ctx.gm.read_scatter(MATRIX_BUFFER, i, j)  # original a values
            has_left = j > 0
            has_up = i > 0
            if has_left.any():
                s[has_left] += ctx.gm.read_scatter(
                    MATRIX_BUFFER, i[has_left], j[has_left] - 1
                )
            if has_up.any():
                s[has_up] += ctx.gm.read_scatter(
                    MATRIX_BUFFER, i[has_up] - 1, j[has_up]
                )
            both = has_left & has_up
            if both.any():
                s[both] -= ctx.gm.read_scatter(MATRIX_BUFFER, i[both] - 1, j[both] - 1)
            ctx.gm.write_scatter(MATRIX_BUFFER, i, j, s)

        return task

    def _run(self, executor: HMMExecutor, rows: int, cols: int) -> None:
        w = executor.params.width
        for k in range(rows + cols - 1):
            i_lo = max(0, k - (cols - 1))
            i_hi = min(k, rows - 1)
            length = i_hi - i_lo + 1
            tasks = [
                self._stage_task(rows, cols, k, chunk)
                for chunk in range(-(-length // w))
            ]
            i = np.arange(i_lo, i_hi + 1)
            attach_fused_spec(tasks, ScatterStageSpec(MATRIX_BUFFER, i, k - i))
            executor.run_kernel(tasks, label=f"stage{k}")
            if self.snapshot_after_stage is not None and k == self.snapshot_after_stage:
                self.snapshot = executor.gm.array(MATRIX_BUFFER).copy()
