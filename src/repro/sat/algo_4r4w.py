"""4R4W SAT algorithm (Section IV): two column scans around two transposes.

Row-wise prefix sums equal ``transpose -> column scan -> transpose``, so
replacing 2R2W's stride phase with the HMM transpose of reference [16]
(Figure 7) yields an all-coalesced algorithm at the price of doubling the
traffic: column scan, transpose, column scan, transpose — four kernels,
three barriers.

Measured traffic (Lemma 3, dominant terms): ``8 n^2`` coalesced accesses
(two scans at ``2 n^2`` each, two transposes at ``2 n^2`` each), no stride;
cost ``8 n^2 / w + 4 l``. Despite moving 4x the data of 2R2W it wins on
real GPUs and on this model because stride access costs ``w`` times more
per element.
"""

from __future__ import annotations

from ..layout.transpose import hmm_transpose
from ..machine.macro.executor import HMMExecutor
from .base import MATRIX_BUFFER, SATAlgorithm
from .scan import column_scan_tasks

#: Scratch buffer holding the transposed matrix between phases.
SCRATCH = "A_transposed"


class FourReadFourWrite(SATAlgorithm):
    """The 4R4W SAT algorithm (scan, transpose, scan, transpose).

    Accepts rectangular inputs (the transposes swap the scratch buffer's
    shape; the result lands back in ``A`` with the original shape).
    """

    name = "4R4W"
    supports_rectangular = True

    def _run(self, executor: HMMExecutor, rows: int, cols: int) -> None:
        w = executor.params.width
        executor.run_kernel(
            column_scan_tasks(MATRIX_BUFFER, rows, cols, w), label="column-scan-1"
        )
        hmm_transpose(executor, MATRIX_BUFFER, SCRATCH, label="transpose-1")
        executor.run_kernel(
            column_scan_tasks(SCRATCH, cols, rows, w), label="column-scan-2"
        )
        hmm_transpose(executor, SCRATCH, MATRIX_BUFFER, label="transpose-2")
        executor.gm.free(SCRATCH)
