"""Common driver for SAT algorithms on the asynchronous HMM.

Every HMM SAT algorithm in this package is a subclass of
:class:`SATAlgorithm` implementing :meth:`SATAlgorithm._run`, which issues
kernels against an :class:`~repro.machine.macro.HMMExecutor` holding the
input in global-memory buffer ``"A"`` and must leave the SAT there in
place. The base class handles validation, buffer setup, result extraction,
and packaging the measured counters into a :class:`SATResult`.
"""

from __future__ import annotations

import abc
import contextlib
import dataclasses
from typing import Dict, Hashable, List, Optional, Union

import numpy as np

from ..errors import ConfigurationError, PlanCompileError, ShapeError
from ..obs import runtime as obs_runtime
from ..machine.cost import CostBreakdown, access_cost, breakdown, transaction_cost
from ..machine.engine import ExecutionEngine, default_engine
from ..machine.macro.counters import AccessCounters
from ..machine.macro.executor import HMMExecutor, KernelTrace
from ..machine.params import MachineParams
from ..util.validation import as_square_matrix, require_multiple

#: Name of the global-memory buffer holding the input and, on completion,
#: the summed area table.
MATRIX_BUFFER = "A"


@dataclasses.dataclass
class SATResult:
    """The SAT plus everything measured while computing it.

    ``n`` is the row count; for the (extension) rectangular inputs the full
    shape is ``sat.shape``.
    """

    sat: np.ndarray
    algorithm: str
    n: int
    params: MachineParams
    counters: AccessCounters
    traces: List[KernelTrace]

    @property
    def cost(self) -> float:
        """Global-memory access cost ``C/w + S + (B+1) l`` (Section III)."""
        return access_cost(self.counters, self.params)

    @property
    def cost_exact(self) -> float:
        """Cost using exact transaction counts instead of ``C/w``."""
        return transaction_cost(self.counters, self.params)

    @property
    def breakdown(self) -> CostBreakdown:
        """Bandwidth vs latency split of the cost."""
        return breakdown(self.counters, self.params)

    @property
    def reads_writes_per_element(self) -> float:
        """Global element accesses per matrix element — the paper's xRyW figure."""
        return self.counters.global_reads_writes / float(self.sat.size)

    def summary(self) -> str:
        c = self.counters
        return (
            f"{self.algorithm}: n={self.n}, cost={self.cost:.0f} "
            f"(bandwidth={self.breakdown.bandwidth:.0f}, "
            f"latency={self.breakdown.latency:.0f}), "
            f"coalesced={c.coalesced_elements}, stride={c.stride_ops}, "
            f"barriers={c.barriers}, accesses/elt={self.reads_writes_per_element:.3f}"
        )


class SATAlgorithm(abc.ABC):
    """Base class: validates input, runs kernels, extracts the SAT."""

    #: Short name used by the registry and in benchmark tables.
    name: str = "abstract"

    #: Whether the input side length must be a multiple of the width.
    requires_block_multiple: bool = True

    #: Whether non-square inputs are accepted (an extension beyond the
    #: paper, implemented for 2R2W, 4R1W, and 1R1W).
    supports_rectangular: bool = False

    @abc.abstractmethod
    def _run(self, executor: HMMExecutor, rows: int, cols: int) -> None:
        """Issue the algorithm's kernels; the SAT must end up in ``A``."""

    # --- execution-engine hooks ---------------------------------------------

    @property
    def plan_safe(self) -> bool:
        """Whether this *instance*'s kernel structure can be plan-compiled.

        False for configurations with per-run side effects that read
        buffer contents between kernels (snapshot captures, kept
        intermediates); those always execute directly.
        """
        return True

    def plan_extras(self) -> Dict[str, Hashable]:
        """Configuration that shapes the kernel structure, for the plan key.

        Anything beyond ``(name, shape, params)`` that changes which
        kernels are launched must appear here (e.g. kR1W's ``p``), or two
        differently-configured instances would share one cached plan.
        """
        return {}

    def compute(
        self,
        matrix: np.ndarray,
        params: Optional[MachineParams] = None,
        *,
        executor: Optional[HMMExecutor] = None,
        seed: Optional[int] = 0,
        engine: Optional[ExecutionEngine] = None,
        use_plan_cache: bool = True,
        fast: bool = False,
        fused: Union[bool, str] = True,
        obs: Optional[bool] = None,
    ) -> SATResult:
        """Compute the SAT of ``matrix`` on the asynchronous HMM.

        Parameters
        ----------
        matrix:
            Square input matrix. Block-based algorithms require the side
            to be a multiple of ``params.width`` (use
            :func:`repro.util.pad_to_multiple` otherwise).
        params:
            Machine configuration; defaults to :class:`MachineParams()`.
        executor:
            Optionally supply a pre-built executor (for custom global
            memory, fault injection, or deterministic block ordering); it
            must not already contain a buffer named ``"A"``. Supplying an
            executor bypasses the plan cache — fault/retry configuration
            is per-run state a shared plan must not absorb.
        seed:
            Seed for the executor's randomized block ordering.
        engine:
            Execution engine holding the plan cache; defaults to the
            process-wide engine. Pass a private engine to isolate caching.
        use_plan_cache:
            Set ``False`` to force direct (plan-less) execution — the
            always-cold reference path used by benchmarks and tests.
        fast:
            Execute through the engine's fast path: per-access traffic
            accounting is replaced by replaying the plan's memoized
            per-kernel tallies (exact, because HMM access patterns are
            data-independent; asserted bit-identical in the test suite).
            The first fast run at a new shape transparently runs counted
            to populate those tallies. Requires the engine path.
        fused:
            With ``fast=True``, selects how each kernel's batched
            schedule executes. ``True`` (default) defers to the
            ``REPRO_FUSED_BACKEND`` environment variable (``numpy`` when
            unset); ``"numpy"`` runs the batched numpy schedule (gather →
            per-block compute → scatter over the plan's precomputed index
            arrays); ``"native"`` runs the same schedule lowered to
            compiled megakernels (:mod:`repro.machine.engine.native` —
            Numba or generated C via cffi, bit-identical, degrading to
            the numpy schedule with a single warning when no JIT
            toolchain is available); ``fused=False`` selects the per-task
            replay path (same accounting, useful for isolation).
        obs:
            Per-run observability toggle. ``True`` records this run's
            metrics and spans into :mod:`repro.obs` even when the
            process-wide flag (``REPRO_OBS`` / :func:`repro.obs.enable`)
            is off; ``False`` silences this run; ``None`` (default)
            inherits the process-wide setting. See :mod:`repro.obs`.
        """
        if self.supports_rectangular:
            matrix = np.asarray(matrix)
            if matrix.ndim != 2 or 0 in matrix.shape:
                raise ShapeError(f"matrix must be non-empty 2-D, got {matrix.shape}")
        else:
            matrix = as_square_matrix(matrix)
        rows, cols = matrix.shape
        if params is None:
            params = MachineParams()
        if self.requires_block_multiple:
            require_multiple(rows, params.width, what="row count")
            require_multiple(cols, params.width, what="column count")
        scope = (
            obs_runtime.enabled_scope(obs) if obs is not None
            else contextlib.nullcontext()
        )
        with scope:
            plan = None
            if executor is None:
                if use_plan_cache and self.plan_safe:
                    try:
                        plan = (engine or default_engine()).plan_for(
                            self, rows, cols, params, input_buffer=MATRIX_BUFFER
                        )
                    except PlanCompileError:
                        plan = None
                executor = HMMExecutor(params, seed=seed)
            elif executor.params is not params:
                raise ShapeError("executor was built with different MachineParams")
            if fast and plan is None:
                raise ConfigurationError(
                    "fast=True requires the plan-cached engine path (no custom "
                    "executor, plan-safe algorithm, use_plan_cache=True)"
                )
            if executor.gm.has(MATRIX_BUFFER):
                raise ShapeError(f"executor already holds a {MATRIX_BUFFER!r} buffer")
            if fast and plan is not None:
                # Resolve the backend now so the observability mode tag
                # names the path that will actually execute: a "native"
                # request on a host without a JIT toolchain runs (and is
                # recorded as) the numpy fused path.
                from ..machine.engine.native import ensure_backend, resolve_fused

                fused = resolve_fused(fused)
                if fused == "native" and ensure_backend() is None:
                    fused = "numpy"
            if plan is None:
                mode = "direct"
            elif not fast:
                mode = "counted"
            elif fused == "native":
                mode = "native"
            elif fused:
                mode = "fused"
            else:
                mode = "replay"
            # install() makes the defensive copy; copy=False avoids a second one.
            executor.gm.install(MATRIX_BUFFER, matrix.astype(np.float64, copy=False))
            with obs_runtime.span(
                "sat_compute", algorithm=self.name, rows=rows, cols=cols, mode=mode
            ):
                if plan is not None:
                    (engine or default_engine()).execute(
                        plan, executor, fast=fast, fused=fused
                    )
                else:
                    self._run(executor, rows, cols)
            obs_runtime.inc("sat_computes_total", algorithm=self.name, mode=mode)
            return SATResult(
                sat=executor.gm.array(MATRIX_BUFFER).copy(),
                algorithm=self.name,
                n=rows,
                params=params,
                counters=executor.counters.copy(),
                traces=list(executor.traces),
            )

    def __repr__(self) -> str:
        return f"<SATAlgorithm {self.name}>"
