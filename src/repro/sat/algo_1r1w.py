"""1R1W SAT algorithm (Section VI) — the paper's main contribution.

Extends 4R1W's diagonal recurrence from elements to ``w x w`` blocks:
Stage ``s`` computes the *final* SAT of every block on anti-diagonal
``I + J == s``, using only the already-final SAT values of its upper and
left neighbors (Figure 11). Since each input element is read exactly once
and each output element written exactly once (plus ``O(n^2/w)`` boundary
traffic), the algorithm is optimal in global memory accesses — every SAT
algorithm must read all of ``A`` and write all of ``S``.

Boundary bookkeeping: a finished block writes its bottom SAT row into
``AuxB`` (an ``m x n`` buffer; row ``I`` holds matrix row ``(I+1)w - 1``)
and its right SAT column, transposed, into ``AuxR`` — both coalesced.
A later block recovers its offsets by *pairwise subtraction* of those rows
(Section VI's ``cs``/``rs``/``s`` reconstruction, here
:func:`~repro.sat.blockops.offsets_from_neighbor_rows`), folds them in as
in 2R1W's Step 3, takes the block SAT, and writes back.

Measured traffic (Theorem 6, dominant terms): ``(1 + 2/w) n^2`` coalesced
reads and writes each — the ``2w + 2`` boundary reads and ``2w`` boundary
writes per block are the ``4w`` words the paper cites — with ``2 n/w - 2``
barriers. The barrier term ``(2n/w) l`` is why 1R1W loses to 2R1W on small
matrices and wins past the crossover (Table II).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..layout.blocking import BlockGrid
from ..machine.engine.fused import BlockStageSpec, attach_fused_spec
from ..machine.macro.executor import BlockContext, BlockTask, HMMExecutor
from .base import MATRIX_BUFFER, SATAlgorithm
from .blockops import (
    apply_offsets,
    block_sat_inplace,
    offsets_from_neighbor_rows,
    stage_block_in,
)

#: Bottom SAT rows, one buffer row per block-row.
AUX_BOTTOM = "AuxB"
#: Right SAT columns (transposed), one buffer row per block-column.
AUX_RIGHT = "AuxR"


def read_corner_prefixed(
    ctx: BlockContext, aux: str, aux_row: int, start: int, w: int
) -> np.ndarray:
    """Read ``w + 1`` aux words ``[corner, run of w]``, or zero-prefix at the edge.

    ``start`` is the first of the ``w`` in-block positions; the corner
    value sits at ``start - 1`` and is part of the same horizontal run
    (one extra coalesced word), except at the matrix edge where it is an
    implicit zero.
    """
    if start > 0:
        return ctx.gm.read_hrun(aux, aux_row, start - 1, w + 1)
    vals = ctx.gm.read_hrun(aux, aux_row, 0, w)
    return np.concatenate(([0.0], vals))


def make_block_stage_task(
    buf: str, grid: BlockGrid, bi: int, bj: int
) -> BlockTask:
    """Task computing the final SAT of block ``(bi, bj)`` from its neighbors.

    Shared by 1R1W (all blocks) and kR1W (middle-band blocks); handles
    rectangular grids (edge tests use the grid's row/column block counts).
    """
    w = grid.w

    def task(ctx: BlockContext) -> None:
        r0, c0 = grid.origin(bi, bj)
        tile = stage_block_in(ctx, buf, r0, c0, w, w)
        above = (
            read_corner_prefixed(ctx, AUX_BOTTOM, bi - 1, c0, w) if bi > 0 else None
        )
        left_t = (
            read_corner_prefixed(ctx, AUX_RIGHT, bj - 1, r0, w) if bj > 0 else None
        )
        top, left, corner = offsets_from_neighbor_rows(above, left_t)
        apply_offsets(tile, top, left, corner)
        block_sat_inplace(tile)
        ctx.gm.write_strip(buf, r0, c0, tile.data)
        if bi < grid.block_rows - 1:
            tile.charge(reads=w)
            ctx.gm.write_hrun(AUX_BOTTOM, bi, c0, tile.data[w - 1, :])
        if bj < grid.block_cols - 1:
            tile.charge(reads=w)
            ctx.gm.write_hrun(AUX_RIGHT, bj, r0, tile.data[:, w - 1])

    return task


def block_stage_tasks(buf: str, grid: BlockGrid, blocks) -> List[BlockTask]:
    """Stage tasks for a set of blocks, fused as one batched group.

    The fused spec precomputes the whole set's gather/scatter index
    arrays and boundary masks, so a warm plan executes the entire
    anti-diagonal as a handful of numpy calls.
    """
    blocks = list(blocks)
    tasks = [make_block_stage_task(buf, grid, bi, bj) for bi, bj in blocks]
    return attach_fused_spec(
        tasks,
        BlockStageSpec(
            buf, grid.w, blocks, grid.block_rows, grid.block_cols,
            AUX_BOTTOM, AUX_RIGHT,
        ),
    )


def alloc_aux_buffers(executor: HMMExecutor, rows: int, cols: int = None) -> None:
    """Allocate the boundary buffers (idempotent; kR1W shares them).

    ``AuxB`` holds one published bottom row per non-terminal block-row
    (length = column count); ``AuxR`` one transposed right column per
    non-terminal block-column (length = row count).
    """
    if cols is None:
        cols = rows
    w = executor.params.width
    if not executor.gm.has(AUX_BOTTOM):
        executor.gm.alloc(AUX_BOTTOM, (max(rows // w - 1, 1), cols))
    if not executor.gm.has(AUX_RIGHT):
        executor.gm.alloc(AUX_RIGHT, (max(cols // w - 1, 1), rows))


class OneReadOneWrite(SATAlgorithm):
    """The 1R1W SAT algorithm (block-diagonal stages, memory-access optimal).

    ``snapshot_after_stage=k`` captures the matrix after stage ``k`` for
    the Figure 11 reproduction.
    """

    name = "1R1W"
    supports_rectangular = True

    def __init__(self, snapshot_after_stage: Optional[int] = None) -> None:
        self.snapshot_after_stage = snapshot_after_stage
        self.snapshot: Optional[np.ndarray] = None

    @property
    def plan_safe(self) -> bool:
        # Capturing a mid-run snapshot reads global memory between
        # kernels, which a reusable plan cannot express.
        return self.snapshot_after_stage is None

    def _run(self, executor: HMMExecutor, rows: int, cols: int) -> None:
        grid = BlockGrid(rows, executor.params.width, cols)
        alloc_aux_buffers(executor, rows, cols)
        for stage in range(grid.num_diagonals):
            tasks = block_stage_tasks(MATRIX_BUFFER, grid, grid.diagonal(stage))
            executor.run_kernel(tasks, label=f"stage{stage}")
            if self.snapshot_after_stage is not None and stage == self.snapshot_after_stage:
                self.snapshot = executor.gm.array(MATRIX_BUFFER).copy()
