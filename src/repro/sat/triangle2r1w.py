"""2R1W-style SAT computation of a *triangular* block region (for kR1W).

Section VII applies "the 2R1W SAT algorithm" to the two corner triangles
of Figure 12. A triangle is not a full matrix, so this module generalizes
2R1W's three steps to an arbitrary *run-contiguous* block region ``R``
(every row and column of ``R`` is a contiguous run of blocks) whose
upper/left boundary blocks are already final and have published their
boundary rows in the 1R1W auxiliary buffers:

1. **sums** — each ``R`` block writes its column sums ``CS`` and row sums
   ``RS`` (transposed) to scratch buffers.
2. **scans** — per block-column, a seeded *exclusive* scan of ``CS``
   yields each block's global sums-above vector (``colAbove``); per
   block-row, the symmetric scan of ``RS`` yields ``rowLeft``. The scan
   seeds are pairwise differences of the final boundary rows (zero for
   the top-left triangle). Each column scan also emits
   ``t[I][J] = sum_j colAbove[I][J](j)`` — the total mass above block
   ``(I, J)`` — into a tiny per-block buffer.
3. **corners** — per block-row, an exclusive scan of ``t`` seeded with the
   boundary corner value gives every block's corner sum
   ``G[I][J] = F(I w - 1, J w - 1)``, via the identity
   ``G[I][J] = G[I][J-1] + t[I][J-1]``.
4. **fix** — each block folds in (``colAbove``, ``rowLeft``, ``G``) as in
   Figure 9, takes its block SAT, writes back, and publishes its boundary
   rows for downstream 1R1W stages.

This keeps the triangle at ``O(1)`` barrier steps (4 kernels) and
``~(3 + O(1/w))`` global accesses per element — the 2R1W profile — without
the M-matrix recursion (the corner scan replaces it at one extra barrier;
the deviation from the paper's ``2 + 2r`` triangle barriers is noted in
DESIGN.md and is immaterial next to the ``2(1-p) n/w`` stage barriers).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ShapeError
from ..layout.blocking import BlockGrid
from ..machine.engine.fused import (
    TriangleFixSpec,
    TriangleSumsSpec,
    attach_fused_spec,
)
from ..machine.macro.executor import BlockContext, BlockTask
from ..machine.macro.global_memory import GlobalMemory
from .algo_1r1w import AUX_BOTTOM, AUX_RIGHT
from .blockops import (
    apply_offsets,
    block_sat_inplace,
    column_sums,
    row_sums,
    stage_block_in,
)

Phase = Tuple[str, List[BlockTask]]

#: Scratch buffer names (shared by both triangles; each overwrites only the
#: entries it later reads).
CS_BUF = "kTri.CS"
RS_BUF = "kTri.RSt"
COL_ABOVE_BUF = "kTri.colAbove"
ROW_LEFT_BUF = "kTri.rowLeft"
T_BUF = "kTri.t"
G_BUF = "kTri.G"


def _runs_by_column(blocks: Sequence[Tuple[int, int]]) -> Dict[int, range]:
    """Map block-column J -> contiguous range of block-rows I in the region."""
    per_col: Dict[int, List[int]] = {}
    for i, j in blocks:
        per_col.setdefault(j, []).append(i)
    runs = {}
    for j, rows in per_col.items():
        rows.sort()
        if rows[-1] - rows[0] + 1 != len(rows):
            raise ShapeError(f"block-column {j} of the region is not contiguous")
        runs[j] = range(rows[0], rows[-1] + 1)
    return runs


def _runs_by_row(blocks: Sequence[Tuple[int, int]]) -> Dict[int, range]:
    """Map block-row I -> contiguous range of block-columns J in the region."""
    return _runs_by_column([(j, i) for i, j in blocks])


def alloc_triangle_buffers(gm: GlobalMemory, grid: BlockGrid) -> None:
    """Allocate the triangle scratch buffers once (idempotent)."""
    m, n = grid.blocks_per_side, grid.n
    for name, shape in (
        (CS_BUF, (m, n)),
        (RS_BUF, (m, n)),
        (COL_ABOVE_BUF, (m, n)),
        (ROW_LEFT_BUF, (m, n)),
        (T_BUF, (m, m)),
        (G_BUF, (m, m)),
    ):
        if not gm.has(name):
            gm.alloc(name, shape)


def triangle_phases(
    buf: str,
    grid: BlockGrid,
    blocks: Sequence[Tuple[int, int]],
    *,
    seeded: bool,
    label: str,
) -> Iterator[Phase]:
    """Yield the four kernel phases computing final SAT values on ``blocks``.

    ``seeded=False`` is the top-left triangle (all boundary sums are zero);
    ``seeded=True`` reads boundary seeds from the 1R1W aux buffers, which
    every already-final block is required to have populated.
    """
    if not blocks:
        return
    w = grid.w
    col_runs = _runs_by_column(blocks)
    row_runs = _runs_by_row(blocks)

    # --- phase 1: per-block sums -------------------------------------------
    def make_sums_task(bi: int, bj: int) -> BlockTask:
        def task(ctx: BlockContext) -> None:
            r0, c0 = grid.origin(bi, bj)
            tile = stage_block_in(ctx, buf, r0, c0, w, w)
            ctx.gm.write_hrun(CS_BUF, bi, c0, column_sums(tile))
            ctx.gm.write_hrun(RS_BUF, bj, r0, row_sums(tile))

        return task

    yield f"{label}:sums", attach_fused_spec(
        [make_sums_task(bi, bj) for bi, bj in blocks],
        TriangleSumsSpec(buf, CS_BUF, RS_BUF, w, blocks),
    )

    # --- phase 2: seeded exclusive scans ------------------------------------
    def make_col_scan_task(bj: int, run: range) -> BlockTask:
        def task(ctx: BlockContext) -> None:
            c0 = bj * w
            i0, length = run.start, len(run)
            cs = ctx.gm.read_strip(CS_BUF, i0, c0, length, w)
            if seeded:
                if i0 == 0:
                    raise ShapeError(
                        "seeded triangle region touches the top edge; "
                        "no final boundary row exists above it"
                    )
                border = ctx.gm.read_hrun(
                    AUX_BOTTOM, i0 - 1, c0 - 1, w + 1
                ) if c0 > 0 else np.concatenate(
                    ([0.0], ctx.gm.read_hrun(AUX_BOTTOM, i0 - 1, 0, w))
                )
                seed = np.diff(border)
            else:
                seed = np.zeros(w)
            above = np.empty((length, w))
            above[0] = seed
            if length > 1:
                above[1:] = seed + np.cumsum(cs[:-1], axis=0)
            ctx.gm.write_strip(COL_ABOVE_BUF, i0, c0, above)
            ctx.gm.write_vrun(T_BUF, bj, i0, above.sum(axis=1))

        return task

    def make_row_scan_task(bi: int, run: range) -> BlockTask:
        def task(ctx: BlockContext) -> None:
            r0 = bi * w
            j0, length = run.start, len(run)
            rs = ctx.gm.read_strip(RS_BUF, j0, r0, length, w)
            if seeded:
                if j0 == 0:
                    raise ShapeError(
                        "seeded triangle region touches the left edge; "
                        "no final boundary column exists left of it"
                    )
                border = ctx.gm.read_hrun(
                    AUX_RIGHT, j0 - 1, r0 - 1, w + 1
                ) if r0 > 0 else np.concatenate(
                    ([0.0], ctx.gm.read_hrun(AUX_RIGHT, j0 - 1, 0, w))
                )
                seed = np.diff(border)
            else:
                seed = np.zeros(w)
            left = np.empty((length, w))
            left[0] = seed
            if length > 1:
                left[1:] = seed + np.cumsum(rs[:-1], axis=0)
            ctx.gm.write_strip(ROW_LEFT_BUF, j0, r0, left)

        return task

    yield f"{label}:scans", [
        make_col_scan_task(j, run) for j, run in sorted(col_runs.items())
    ] + [make_row_scan_task(i, run) for i, run in sorted(row_runs.items())]

    # --- phase 3: corner sums ------------------------------------------------
    def make_corner_task(bi: int, run: range) -> BlockTask:
        def task(ctx: BlockContext) -> None:
            j0, length = run.start, len(run)
            t_row = ctx.gm.read_hrun(T_BUF, bi, j0, length)
            if seeded and j0 > 0:
                # F(bi*w - 1, j0*w - 1): published by the final block
                # above-left of the run's first block.
                g0 = float(ctx.gm.read_at(AUX_BOTTOM, bi - 1, j0 * w - 1))
            else:
                g0 = 0.0
            g = np.empty(length)
            g[0] = g0
            if length > 1:
                g[1:] = g0 + np.cumsum(t_row[:-1])
            ctx.gm.write_hrun(G_BUF, bi, j0, g)

        return task

    yield f"{label}:corners", [
        make_corner_task(i, run) for i, run in sorted(row_runs.items())
    ]

    # --- phase 4: block fix-up ------------------------------------------------
    m = grid.blocks_per_side

    def make_fix_task(bi: int, bj: int) -> BlockTask:
        def task(ctx: BlockContext) -> None:
            r0, c0 = grid.origin(bi, bj)
            tile = stage_block_in(ctx, buf, r0, c0, w, w)
            top = ctx.gm.read_hrun(COL_ABOVE_BUF, bi, c0, w)
            left = ctx.gm.read_hrun(ROW_LEFT_BUF, bj, r0, w)
            corner = float(ctx.gm.read_at(G_BUF, bi, bj))
            apply_offsets(tile, top, left, corner)
            block_sat_inplace(tile)
            ctx.gm.write_strip(buf, r0, c0, tile.data)
            if bi < m - 1:
                tile.charge(reads=w)
                ctx.gm.write_hrun(AUX_BOTTOM, bi, c0, tile.data[w - 1, :])
            if bj < m - 1:
                tile.charge(reads=w)
                ctx.gm.write_hrun(AUX_RIGHT, bj, r0, tile.data[:, w - 1])

        return task

    yield f"{label}:fix", attach_fused_spec(
        [make_fix_task(bi, bj) for bi, bj in blocks],
        TriangleFixSpec(
            buf, COL_ABOVE_BUF, ROW_LEFT_BUF, G_BUF,
            AUX_BOTTOM, AUX_RIGHT, w, m, blocks,
        ),
    )
