"""2R1W SAT algorithm (Section V; Nehab et al. 2011): block sums, scans, fix-up.

The matrix is partitioned into ``(n/w)^2`` blocks of ``w x w``:

* **Step 1** — every block is staged into shared memory; its column sums,
  row sums, and total are written to three small auxiliary matrices
  (``C`` of shape ``(m-1) x n``, ``R^T`` of shape ``(m-1) x n`` — stored
  transposed so Step 2's row scan becomes a coalesced column scan — and
  the block-sum matrix ``M``).
* **Step 2** — column scans of ``C`` and ``R^T``, plus the SAT of ``M``:
  computed by a single DMM when ``M`` fits a block, otherwise by a
  *recursive* 2R1W invocation whose Step 1 is merged into this kernel
  (hence exactly two extra barriers per recursion level, Lemma 4).
* **Step 3** — every block is staged again, the scanned boundary values
  are folded in (Figure 9: column offsets onto the top row, row offsets
  onto the left column, the corner sum onto the top-left element), the
  block SAT is taken, and the final values are written back.

Measured traffic (Lemma 4, dominant terms): ``2 n^2`` block reads +
``n^2`` block writes + ``O(n^2 / w)`` auxiliary traffic, all coalesced;
``3 + 2r`` kernels (``2 + 2r`` barriers) at recursion depth ``r``, with
``r <= 1`` for every realistic size (``r = 0`` iff ``n <= w^2 + w``).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..layout.blocking import BlockGrid
from ..machine.engine.fused import (
    SingleBlockSatSpec,
    Step1Spec,
    Step3Spec,
    attach_fused_spec,
)
from ..machine.macro.executor import BlockContext, BlockTask, HMMExecutor
from ..machine.macro.global_memory import GlobalMemory
from .base import MATRIX_BUFFER, SATAlgorithm
from .blockops import (
    apply_offsets,
    block_sat_inplace,
    block_total,
    column_sums,
    row_sums,
    stage_block_in,
)
from .scan import column_scan_tasks

Phase = Tuple[str, List[BlockTask]]


def recursion_depth(n: int, w: int) -> int:
    """Depth ``r`` of the Step 2 recursion for an ``n x n`` matrix.

    The block-sum matrix has side ``m - 1 = n/w - 1``; recursion happens
    while that exceeds ``w``, shrinking roughly by a factor ``w`` per
    level — so ``r <= 1`` up to ``n = w^2 (w + 1)`` (528K at ``w=32``).
    """
    depth = 0
    side = n // w - 1
    while side > w:
        depth += 1
        side = -(-side // w) - 1  # ceil-pad to blocks, minus one
    return depth


def _pad_to_multiple(x: int, w: int) -> int:
    return -(-x // w) * w


def _single_block_sat_task(buf: str, side: int) -> BlockTask:
    """SAT of a whole (at most ``w x w``) buffer region by one DMM."""

    def task(ctx: BlockContext) -> None:
        tile = stage_block_in(ctx, buf, 0, 0, side, side)
        block_sat_inplace(tile)
        ctx.gm.write_strip(buf, 0, 0, tile.data)

    return attach_fused_spec([task], SingleBlockSatSpec(buf, side))[0]


class TwoReadOneWrite(SATAlgorithm):
    """The 2R1W SAT algorithm (block decomposition with scanned boundaries).

    Set ``keep_intermediates=True`` to capture the auxiliary buffers after
    each top-level phase (used by the Figure 8 reproduction).
    """

    name = "2R1W"

    def __init__(self, keep_intermediates: bool = False) -> None:
        self.keep_intermediates = keep_intermediates
        self.intermediates: Dict[str, Dict[str, np.ndarray]] = {}

    @property
    def plan_safe(self) -> bool:
        # Keeping intermediates reads the auxiliary buffers after every
        # phase, which a reusable plan cannot express.
        return not self.keep_intermediates

    # --- step tasks ---------------------------------------------------------

    def _step1_tasks(
        self, buf: str, grid: BlockGrid, c_buf: str, rt_buf: str, m_buf: str
    ) -> List[BlockTask]:
        m, w = grid.blocks_per_side, grid.w
        tasks = []
        for bi, bj in grid.all_blocks():
            if bi == m - 1 and bj == m - 1:
                continue  # its sums feed nothing downstream

            def task(ctx: BlockContext, bi=bi, bj=bj) -> None:
                r0, c0 = grid.origin(bi, bj)
                tile = stage_block_in(ctx, buf, r0, c0, w, w)
                if bi < m - 1:
                    ctx.gm.write_hrun(c_buf, bi, c0, column_sums(tile))
                if bj < m - 1:
                    ctx.gm.write_hrun(rt_buf, bj, r0, row_sums(tile))
                if bi < m - 1 and bj < m - 1:
                    ctx.gm.write_at(m_buf, bi, bj, block_total(tile))

            tasks.append(task)
        return attach_fused_spec(
            tasks, Step1Spec(buf, c_buf, rt_buf, m_buf, m, w)
        )

    def _step3_tasks(
        self, buf: str, grid: BlockGrid, c_buf: str, rt_buf: str, m_buf: str
    ) -> List[BlockTask]:
        w = grid.w
        tasks = []
        for bi, bj in grid.all_blocks():

            def task(ctx: BlockContext, bi=bi, bj=bj) -> None:
                r0, c0 = grid.origin(bi, bj)
                tile = stage_block_in(ctx, buf, r0, c0, w, w)
                top = ctx.gm.read_hrun(c_buf, bi - 1, c0, w) if bi > 0 else None
                left = ctx.gm.read_hrun(rt_buf, bj - 1, r0, w) if bj > 0 else None
                corner = (
                    ctx.gm.read_at(m_buf, bi - 1, bj - 1) if bi > 0 and bj > 0 else 0.0
                )
                apply_offsets(tile, top, left, corner)
                block_sat_inplace(tile)
                ctx.gm.write_strip(buf, r0, c0, tile.data)

            tasks.append(task)
        return attach_fused_spec(
            tasks,
            Step3Spec(buf, c_buf, rt_buf, m_buf, grid.blocks_per_side, w),
        )

    # --- phase generation -----------------------------------------------------

    def _phases(self, gm: GlobalMemory, buf: str, n: int, w: int) -> Iterator[Phase]:
        """Yield the kernel phases; recursion merges its Step 1 into Step 2."""
        if n <= w:
            yield f"{buf}:sat-single-block", [_single_block_sat_task(buf, n)]
            return
        grid = BlockGrid(n, w)
        m = grid.blocks_per_side
        mm = m - 1  # side of the auxiliary matrices
        c_buf, rt_buf, m_buf = f"{buf}.C", f"{buf}.Rt", f"{buf}.M"
        gm.alloc(c_buf, (mm, n))
        gm.alloc(rt_buf, (mm, n))
        m_side = mm if mm <= w else _pad_to_multiple(mm, w)
        gm.alloc(m_buf, (m_side, m_side))

        yield f"{buf}:step1", self._step1_tasks(buf, grid, c_buf, rt_buf, m_buf)

        scans = column_scan_tasks(c_buf, mm, n, w) + column_scan_tasks(rt_buf, mm, n, w)
        if mm <= w:
            yield f"{buf}:step2", scans + [_single_block_sat_task(m_buf, mm)]
        else:
            sub = self._phases(gm, m_buf, m_side, w)
            first_label, first_tasks = next(sub)
            yield f"{buf}:step2+{first_label}", scans + first_tasks
            for label, tasks in sub:
                yield label, tasks

        yield f"{buf}:step3", self._step3_tasks(buf, grid, c_buf, rt_buf, m_buf)

    def _run(self, executor: HMMExecutor, n: int, cols: int) -> None:
        w = executor.params.width
        for label, tasks in self._phases(executor.gm, MATRIX_BUFFER, n, w):
            executor.run_kernel(tasks, label=label)
            if self.keep_intermediates:
                self.intermediates[label] = {
                    name: executor.gm.array(name).copy()
                    for name in (MATRIX_BUFFER, "A.C", "A.Rt", "A.M")
                    if executor.gm.has(name)
                }
