"""Ground-truth SAT computation and rectangle-sum queries.

The summed area table of a matrix ``a`` is ``s[i][j] = sum of a[y][x] for
y <= i, x <= j`` (Crow 1984). It is obtained by column-wise prefix sums
followed by row-wise prefix sums (Figure 3), which is one ``np.cumsum``
per axis here — the oracle every HMM algorithm is verified against.

Once the SAT exists, the sum of any axis-aligned rectangle costs four
lookups (inclusion-exclusion), the property all the paper's computer-vision
motivation rests on.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..util.validation import as_square_matrix


def sat_reference(a: np.ndarray) -> np.ndarray:
    """The SAT by two cumulative sums — the correctness oracle.

    Works for any 2-D matrix (square not required).
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ShapeError(f"SAT input must be 2-D, got ndim={a.ndim}")
    return np.cumsum(np.cumsum(a, axis=0), axis=1)


def rectangle_sum(sat: np.ndarray, top: int, left: int, bottom: int, right: int):
    """Sum of ``a[top..bottom][left..right]`` (inclusive) from the SAT.

    Evaluates the paper's identity
    ``s[bottom][right] - s[top-1][right] - s[bottom][left-1] + s[top-1][left-1]``
    with out-of-range terms treated as zero.
    """
    sat = np.asarray(sat)
    if sat.ndim != 2:
        raise ShapeError("rectangle_sum requires a 2-D SAT")
    if not (0 <= top <= bottom < sat.shape[0] and 0 <= left <= right < sat.shape[1]):
        raise ShapeError(
            f"rectangle ({top},{left})-({bottom},{right}) outside SAT of shape {sat.shape}"
        )
    total = sat[bottom, right]
    if top > 0:
        total = total - sat[top - 1, right]
    if left > 0:
        total = total - sat[bottom, left - 1]
    if top > 0 and left > 0:
        total = total + sat[top - 1, left - 1]
    return total


def rectangle_sums(sat: np.ndarray, rects: np.ndarray) -> np.ndarray:
    """Vectorized :func:`rectangle_sum` for an ``(k, 4)`` array of rectangles.

    Each row is ``(top, left, bottom, right)`` inclusive.
    """
    sat = np.asarray(sat)
    rects = np.asarray(rects, dtype=np.int64)
    if rects.ndim != 2 or rects.shape[1] != 4:
        raise ShapeError("rects must have shape (k, 4)")
    top, left, bottom, right = rects.T
    if (
        (top < 0).any()
        or (left < 0).any()
        or (top > bottom).any()
        or (left > right).any()
        or (bottom >= sat.shape[0]).any()
        or (right >= sat.shape[1]).any()
    ):
        raise ShapeError("some rectangles fall outside the SAT")
    # Pad the SAT with a zero row/column so the -1 indices are valid.
    padded = np.zeros((sat.shape[0] + 1, sat.shape[1] + 1), dtype=sat.dtype)
    padded[1:, 1:] = sat
    return (
        padded[bottom + 1, right + 1]
        - padded[top, right + 1]
        - padded[bottom + 1, left]
        + padded[top, left]
    )


def undo_sat(sat: np.ndarray) -> np.ndarray:
    """Recover the original matrix from its SAT (the inverse transform).

    ``a[i][j] = s[i][j] - s[i-1][j] - s[i][j-1] + s[i-1][j-1]`` — also the
    body of Formula (1) rearranged, used by property tests as a round-trip
    invariant.
    """
    sat = np.asarray(sat)
    if sat.ndim != 2:
        raise ShapeError("undo_sat requires a 2-D SAT")
    a = sat.copy()
    a[1:, :] -= sat[:-1, :]
    a[:, 1:] -= sat[:, :-1]
    a[1:, 1:] += sat[:-1, :-1]
    return a


def assert_sat_equal(candidate: np.ndarray, original: np.ndarray, *, rtol=1e-9, atol=1e-6):
    """Raise ``AssertionError`` unless ``candidate`` is the SAT of ``original``."""
    expected = sat_reference(original)
    if not np.allclose(candidate, expected, rtol=rtol, atol=atol):
        bad = np.argwhere(~np.isclose(candidate, expected, rtol=rtol, atol=atol))
        i, j = bad[0]
        raise AssertionError(
            f"SAT mismatch at ({i}, {j}): got {candidate[i, j]!r}, "
            f"expected {expected[i, j]!r} ({len(bad)} cells differ)"
        )
