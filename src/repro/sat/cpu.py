"""Sequential CPU baselines (Section VIII's 2R2W(CPU) and 4R1W(CPU)).

The paper times two single-thread algorithms on a Xeon X7460 to anchor the
>100x GPU speedup claim, and observes that 4R1W(CPU) — a single raster
pass of Formula (1) — beats 2R2W(CPU) *because of memory access locality*:
2R2W(CPU)'s first pass walks columns of a row-major array, striding
``8n`` bytes between touches, while 4R1W(CPU) touches only the current and
previous row.

Four variants are implemented:

* ``cpu_2r2w`` / ``cpu_4r1w`` — faithful loop structure, vectorized one
  row at a time (a per-element Python loop would measure interpreter
  overhead, not memory behaviour). ``cpu_2r2w`` performs the column pass
  in raster order exactly as the paper states, so its write stream has the
  same locality the paper's C code has.
* ``cpu_numpy_2r2w`` — the fastest practical library form
  (two ``np.cumsum``), included to make the speedup comparison honest
  against the best CPU code a user would actually write.
* ``cpu_4r1w_strict`` — pure-Python per-element Formula (1), used only at
  tiny sizes to validate the vectorized variants.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


def _check(a: np.ndarray) -> np.ndarray:
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ShapeError(f"SAT input must be 2-D, got ndim={a.ndim}")
    return a


def cpu_2r2w(a: np.ndarray) -> np.ndarray:
    """2R2W(CPU): column-wise then row-wise prefix sums, raster order.

    The column pass is expressed as ``row[i] += row[i-1]`` sweeps — the
    raster-scan order of the paper — whose memory stream is sequential in
    ``i`` but reads/writes two full rows per step.
    """
    s = _check(a).copy()
    n_rows = s.shape[0]
    for i in range(1, n_rows):  # column-wise prefix sums, raster order
        s[i, :] += s[i - 1, :]
    for i in range(n_rows):  # row-wise prefix sums, raster order
        np.cumsum(s[i, :], out=s[i, :])
    return s


def cpu_4r1w(a: np.ndarray) -> np.ndarray:
    """4R1W(CPU): Formula (1) in raster order, one row at a time.

    Within row ``i``: ``s[i][j] = a[i][j] + s[i][j-1] + s[i-1][j] -
    s[i-1][j-1]``, i.e. a running row sum plus the previous SAT row —
    two streaming reads and one streaming write per row, the locality the
    paper credits for beating 2R2W(CPU).
    """
    a = _check(a)
    s = np.empty_like(a)
    np.cumsum(a[0, :], out=s[0, :])
    for i in range(1, a.shape[0]):
        np.cumsum(a[i, :], out=s[i, :])
        s[i, :] += s[i - 1, :]
    return s


def cpu_numpy_2r2w(a: np.ndarray) -> np.ndarray:
    """Best-practice library form: ``cumsum`` along both axes."""
    return np.cumsum(np.cumsum(_check(a), axis=0), axis=1)


def cpu_4r1w_strict(a: np.ndarray) -> np.ndarray:
    """Per-element Formula (1) in pure Python — validation oracle only."""
    a = _check(a)
    n_rows, n_cols = a.shape
    s = np.zeros_like(a)
    for i in range(n_rows):
        for j in range(n_cols):
            s[i, j] = a[i, j]
            if j > 0:
                s[i, j] += s[i, j - 1]
            if i > 0:
                s[i, j] += s[i - 1, j]
            if i > 0 and j > 0:
                s[i, j] -= s[i - 1, j - 1]
    return s


#: Name -> callable, for the Table II CPU benchmark.
CPU_ALGORITHMS = {
    "2R2W(CPU)": cpu_2r2w,
    "4R1W(CPU)": cpu_4r1w,
    "numpy-cumsum(CPU)": cpu_numpy_2r2w,
}
