"""The combined (1+p^2)R1W SAT algorithm (Section VII, Figure 12).

1R1W's weakness is latency: its early and late anti-diagonal stages hold
only a few blocks each, so the per-stage barrier latency ``l`` is not
amortized. kR1W therefore clips both corners: for a mixing parameter
``p`` in ``[0, 1]``, the first ``t = round(p (m-1))`` block diagonals (the
top-left triangle A) and the last ``t`` (the bottom-right triangle B) are
computed 2R1W-style in O(1) barriers each, and only the wide middle band C
runs 1R1W's diagonal stages.

The triangles hold ``~p^2 n^2`` elements touched ``~3`` times per element
and the band ``~(1-p^2) n^2`` elements touched ``~2`` times, so the
algorithm performs ``(1 + p^2) n^2`` reads and ``n^2`` writes — hence the
name: ``p = 1/2`` gives the paper's 1.25R1W. Barriers drop from
``2 n/w`` to ``2 (1-p) n/w + O(1)`` (Theorem 7). The optimal ``p``
balances the extra triangle bandwidth against the saved stage latency and
therefore *decreases* as ``n`` grows — the trend Table II's best-``p`` row
shows and :mod:`repro.sat.tuning` reproduces.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ShapeError
from ..layout.blocking import BlockGrid
from ..machine.macro.executor import HMMExecutor
from .algo_1r1w import alloc_aux_buffers, block_stage_tasks
from .base import MATRIX_BUFFER, SATAlgorithm
from .triangle2r1w import alloc_triangle_buffers, triangle_phases


class CombinedKR1W(SATAlgorithm):
    """The (1+p^2)R1W SAT algorithm: 2R1W triangles around a 1R1W band.

    Parameters
    ----------
    p:
        Mixing parameter in ``[0, 1]``: the fraction of the ``m - 1``
        off-main diagonals assigned to each corner triangle. ``p = 0``
        degenerates to pure 1R1W; ``p = 0.5`` is the paper's 1.25R1W.
    """

    name = "kR1W"

    def __init__(self, p: float = 0.5) -> None:
        if not 0.0 <= p <= 1.0:
            raise ShapeError(f"p must be in [0, 1], got {p}")
        self.p = p

    @property
    def k(self) -> float:
        """Reads per element: ``1 + p^2`` (the 'k' in kR1W)."""
        return 1.0 + self.p**2

    def plan_extras(self):
        # p changes the triangle/band partition, i.e. the kernel structure:
        # two instances with different p must never share a cached plan.
        return {"p": self.p}

    @property
    def display_name(self) -> str:
        return f"{self.k:.4g}R1W(p={self.p:g})"

    def _run(self, executor: HMMExecutor, n: int, cols: int) -> None:
        w = executor.params.width
        grid = BlockGrid(n, w)
        top, mid, bottom = grid.triangle_partition(self.p)
        alloc_aux_buffers(executor, n)
        if top or bottom:
            alloc_triangle_buffers(executor.gm, grid)

        # (A) top-left triangle, 2R1W-style with zero seeds.
        for label, tasks in triangle_phases(
            MATRIX_BUFFER, grid, top, seeded=False, label="A"
        ):
            executor.run_kernel(tasks, label=label)

        # (C) middle band, 1R1W diagonal stages.
        m = grid.blocks_per_side
        t = int(round(self.p * (m - 1)))
        for stage in range(t, 2 * (m - 1) - t + 1):
            tasks = block_stage_tasks(MATRIX_BUFFER, grid, grid.diagonal(stage))
            executor.run_kernel(tasks, label=f"C:stage{stage}")

        # (B) bottom-right triangle, 2R1W-style seeded from the band.
        for label, tasks in triangle_phases(
            MATRIX_BUFFER, grid, bottom, seeded=True, label="B"
        ):
            executor.run_kernel(tasks, label=label)


class OnePointTwoFiveR1W(CombinedKR1W):
    """The paper's named 1.25R1W instance (``p = 1/2``)."""

    name = "1.25R1W"

    def __init__(self) -> None:
        super().__init__(p=0.5)
