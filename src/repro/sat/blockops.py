"""Per-block (in-DMM) computations shared by the block-based SAT algorithms.

2R1W, 1R1W, and kR1W all stage ``w x w`` blocks into shared memory and run
the same small set of block-local computations there: column/row sums, the
block SAT, and the offset application of Figure 9 (add column offsets to
the top row, row offsets to the left column, the corner sum to the top-left
element, then take the block SAT). These helpers centralize both the math
and the shared-memory accounting.

All block-local scans are conflict-free under the diagonal arrangement
(Lemma 1; proved cycle-exactly in ``tests/layout/test_diagonal.py``), so the
macro model performs them with numpy and charges shared traffic without
serialization penalties — consistent with the paper's observation that
in-DMM work "is so small that it can be hidden by latency overhead".
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..machine.macro.executor import BlockContext
from ..machine.macro.shared import SharedArray


def stage_block_in(
    ctx: BlockContext, buf: str, r0: int, c0: int, h: int, w: int
) -> SharedArray:
    """Read a block from global memory into fresh shared memory (coalesced)."""
    tile = ctx.shared.alloc((h, w))
    data = ctx.gm.read_strip(buf, r0, c0, h, w)
    tile.fill(data)
    return tile


def column_sums(tile: SharedArray) -> np.ndarray:
    """Column sums of a staged block. Charges one shared read per element."""
    tile.charge(reads=tile.data.size)
    return tile.data.sum(axis=0)


def row_sums(tile: SharedArray) -> np.ndarray:
    """Row sums of a staged block. Charges one shared read per element."""
    tile.charge(reads=tile.data.size)
    return tile.data.sum(axis=1)


def block_total(tile: SharedArray) -> float:
    """Sum of a staged block. Charges one shared read per element."""
    tile.charge(reads=tile.data.size)
    return tile.data.sum()


def block_sat_inplace(tile: SharedArray) -> None:
    """Replace a staged block's contents with its SAT.

    Two scan passes (column-wise then row-wise), each reading and writing
    every element once — ``2 h w`` shared reads and writes, conflict-free
    under the diagonal arrangement.
    """
    data = tile.data
    np.cumsum(data, axis=0, out=data)
    np.cumsum(data, axis=1, out=data)
    tile.charge(reads=2 * data.size, writes=2 * data.size)


def apply_offsets(
    tile: SharedArray,
    top: Optional[np.ndarray] = None,
    left: Optional[np.ndarray] = None,
    corner: float = 0.0,
) -> None:
    """Figure 9's Step 3-1: fold boundary offsets into a staged block.

    ``top[j]`` is the sum of all elements strictly above the block in
    global column ``c0 + j``; ``left[i]`` the sum strictly to the left in
    global row ``r0 + i``; ``corner`` the sum of everything strictly
    above-left. After :func:`block_sat_inplace`, the block then holds its
    final global SAT values.
    """
    data = tile.data
    h, w = data.shape
    writes = 0
    if top is not None:
        data[0, :] += top
        writes += w
    if left is not None:
        data[:, 0] += left
        writes += h
    if corner:
        data[0, 0] += corner
        writes += 1
    tile.charge(reads=writes, writes=writes)


def offsets_from_neighbor_rows(
    above: Optional[np.ndarray], left_t: Optional[np.ndarray]
) -> Tuple[Optional[np.ndarray], Optional[np.ndarray], float]:
    """Reconstruct (top, left, corner) offsets from neighbors' final SAT rows.

    This is the pairwise-subtraction step of Section VI. ``above`` is the
    bottom SAT row of the block above *prefixed with the corner value*
    ``F(r0-1, c0-1)``, i.e. ``w + 1`` entries
    ``[F(r0-1, c0-1), F(r0-1, c0), ..., F(r0-1, c0+w-1)]``; at the left
    matrix edge the corner prefix is 0. ``left_t`` is the right SAT column
    of the block to the left, transposed and likewise corner-prefixed.
    Either may be ``None`` when the block touches the top/left matrix edge.

    Because SAT values accumulate monotonically along a row or column,
    adjacent differences recover the per-column sums-above and per-row
    sums-to-the-left, and the shared first entry is the corner sum.
    """
    top = left = None
    corner = 0.0
    if above is not None:
        corner = float(above[0])
        top = np.diff(above)
    if left_t is not None:
        if above is None:
            corner = float(left_t[0])
        left = np.diff(left_t)
    return top, left, corner
