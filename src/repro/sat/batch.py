"""Multi-core batch SAT frontend: many same-shape matrices, all cores.

The simulator is single-threaded Python, so one process leaves most of
the host idle. For the production-serving pattern — a stream of
same-shape matrices — this module fans batches out over a
:class:`~concurrent.futures.ProcessPoolExecutor`:

* inputs and outputs live in two :mod:`multiprocessing.shared_memory`
  blocks per batch, so matrices cross the process boundary by name, not
  by pickle (task payloads are a few strings and ints);
* each worker holds ONE warm :class:`~repro.machine.engine.ExecutionEngine`
  for its whole life, so its first matrix at a shape compiles + measures
  the plan and every later matrix replays it through the fused backend —
  the per-worker analogue of the plan-cache serving loop;
* results come back as an iterator ordered by input position, whatever
  order the workers finished in.

:class:`BatchSession` is the serving-shaped API: the pool (and each
worker's plan cache) survives across ``map`` calls, so pool startup and
per-worker warm-up are one-time costs amortized over the session — the
same steady-state framing the plan-cache benchmark uses. One-shot
:func:`sat_batch` wraps a session around a single batch.

Counters are not shipped back per matrix: HMM access patterns are
data-independent, so every matrix of the batch has the *same* tallies.
:func:`batch_counters` recomputes them once, in-process.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ShapeError, WorkerCrashed
from ..machine.params import MachineParams
from ..obs import runtime as obs

#: Environment knob used by the crash-surfacing test: a worker processing
#: this batch index dies mid-task (``os._exit``), which is how a segfault
#: or OOM kill looks to the pool. Never set outside tests.
CRASH_ENV_VAR = "REPRO_BATCH_CRASH_INDEX"

#: Companion knob for *transient*-crash tests: when set to a file path,
#: the poison task above only fires while that file exists — and removes
#: it on the way down — so the crash happens exactly once and the retry
#: of the batch suffix succeeds. Never set outside tests.
CRASH_ONCE_ENV_VAR = "REPRO_BATCH_CRASH_ONCE_FLAG"

# Per-worker state, populated by _worker_init and the first task of each
# batch (module globals are the ProcessPoolExecutor initializer channel).
_WORKER = {}


def _stack_batch(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Validate a batch and stack it into one (k, rows, cols) float64 array."""
    arrays = [np.asarray(m) for m in matrices]
    if not arrays:
        return np.empty((0, 0, 0), dtype=np.float64)
    for i, a in enumerate(arrays):
        if a.ndim != 2 or 0 in a.shape:
            raise ShapeError(f"batch[{i}] must be a non-empty 2-D matrix, got {a.shape}")
        if a.shape != arrays[0].shape:
            raise ShapeError(
                f"batch matrices must share one shape (one cached plan, one "
                f"shared-memory layout): batch[0] is {arrays[0].shape}, "
                f"batch[{i}] is {a.shape}"
            )
    return np.stack(arrays).astype(np.float64, copy=False)


def _make_algorithm(algorithm, algo_kwargs):
    from .registry import make_algorithm

    if isinstance(algorithm, str):
        return make_algorithm(algorithm, **algo_kwargs)
    if algo_kwargs:
        raise TypeError("algorithm kwargs only apply to registry names")
    return algorithm


def _worker_init(algorithm, params, fast, fused, seed):
    from ..machine.engine import ExecutionEngine, PlanCache

    _WORKER.update(
        algo=algorithm,
        params=params,
        fast=fast,
        fused=fused,
        seed=seed,
        engine=ExecutionEngine(cache=PlanCache()),
        warm_shapes=set(),
        batch=None,  # (in_name, inputs, outputs, shm handles) of current batch
    )


def _worker_attach(in_name, out_name, shape):
    """(Re)attach to the current batch's shared blocks, dropping the last.

    With fork-started workers (the Linux default) the resource tracker
    process is shared with the parent, so attach-time registration is a
    harmless duplicate and the parent's ``unlink()`` performs the one
    unregister — no extra bookkeeping needed here.
    """
    batch = _WORKER.get("batch")
    if batch is not None and batch[0] == in_name:
        return batch
    if batch is not None:
        batch[3].close()
        batch[4].close()
    shm_in = shared_memory.SharedMemory(name=in_name)
    shm_out = shared_memory.SharedMemory(name=out_name)
    batch = (
        in_name,
        np.ndarray(shape, dtype=np.float64, buffer=shm_in.buf),
        np.ndarray(shape, dtype=np.float64, buffer=shm_out.buf),
        shm_in,
        shm_out,
    )
    _WORKER["batch"] = batch
    return batch


def _worker_compute(task) -> int:
    in_name, out_name, shape, index = task
    crash_at = os.environ.get(CRASH_ENV_VAR)
    if crash_at is not None and int(crash_at) == index:
        once_flag = os.environ.get(CRASH_ONCE_ENV_VAR)
        if once_flag is None:
            os._exit(13)
        if os.path.exists(once_flag):
            os.unlink(once_flag)  # arm-once: the retried task survives
            os._exit(13)
    w = _WORKER
    _, inputs, outputs, _, _ = _worker_attach(in_name, out_name, shape)
    # The first matrix at a shape runs counted (populating the plan's
    # tallies); everything after replays fused. Outputs are identical
    # either way — that is the fused backend's tested contract.
    fast = w["fast"] and shape in w["warm_shapes"]
    result = w["algo"].compute(
        inputs[index], w["params"], engine=w["engine"],
        fast=fast, fused=w["fused"], seed=w["seed"],
    )
    w["warm_shapes"].add(shape)
    outputs[index] = result.sat
    return index


class BatchSession:
    """A long-lived multi-core SAT server: warm pool, warm plan caches.

    Construction starts the worker pool; every ``map`` call streams one
    batch through it. Worker state — the process itself and its engine's
    plan cache — persists across batches, so repeated same-shape batches
    run entirely on the fused fast path after each worker's first matrix.
    Use as a context manager, or call :meth:`close`.

    ``workers=1`` (or ``0``) degenerates to an in-process serial loop
    with one warm engine — same iterator contract, no pool — which is
    also the measurement baseline for the throughput benchmark.
    """

    def __init__(
        self,
        algorithm="1R1W",
        params: Optional[MachineParams] = None,
        *,
        workers: Optional[int] = None,
        fast: bool = True,
        fused: Union[bool, str] = True,
        seed: int = 0,
        **algo_kwargs,
    ):
        self.algo = _make_algorithm(algorithm, algo_kwargs)
        self.params = params if params is not None else MachineParams()
        if workers is None:
            workers = os.cpu_count() or 1
        self.workers = max(1, workers)
        self.fast = fast
        self.fused = fused
        self.seed = seed
        self._pool = None
        self._engine = None  # serial path's session engine
        self._warm_shapes = set()
        if self.workers > 1:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_worker_init,
                initargs=(self.algo, self.params, fast, fused, seed),
            )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _restart_pool(self) -> None:
        """Replace a broken pool with a fresh one (same warm-up contract).

        New workers start with cold plan caches — their first matrix at a
        shape recompiles, exactly like session startup; correctness is
        unaffected (the fused backend's outputs are identical either way).
        """
        self._pool.shutdown(wait=True)
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_worker_init,
            initargs=(self.algo, self.params, self.fast, self.fused, self.seed),
        )

    def __enter__(self) -> "BatchSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- batch execution -----------------------------------------------------

    def warm(self, shape: Tuple[int, int]) -> None:
        """Pre-warm every worker's plan cache for ``shape``.

        Runs one matrix per worker so later batches at this shape start
        on the fused fast path immediately. Optional — the first batch
        warms implicitly — but it moves the one-time compile + counted
        run out of measured steady-state throughput. All-ones probes
        (not zeros) so the memoized tallies include the corner-offset
        writes the block code skips for exactly-0.0 corrections.
        """
        ones = [np.ones(shape)] * max(1, self.workers)
        for _ in self.map(ones):
            pass

    def map(self, matrices: Sequence[np.ndarray]) -> Iterator[np.ndarray]:
        """SATs for one same-shape batch, as an input-ordered iterator."""
        stacked = _stack_batch(matrices)
        if stacked.shape[0] == 0:
            return iter(())
        mode = "serial" if self._pool is None else "pool"
        obs.inc("batch_batches_total", mode=mode)
        obs.inc("batch_matrices_total", stacked.shape[0], mode=mode)
        if self._pool is None:
            return self._map_serial(stacked)
        return self._map_pool(stacked)

    def _map_serial(self, stacked) -> Iterator[np.ndarray]:
        from ..machine.engine import ExecutionEngine, PlanCache

        if self._engine is None:
            self._engine = ExecutionEngine(cache=PlanCache())
        shape = stacked.shape[1:]
        recording = obs.is_enabled()
        with obs.span("batch_map", mode="serial", matrices=stacked.shape[0]):
            for i in range(stacked.shape[0]):
                t0 = time.perf_counter() if recording else 0.0
                result = self.algo.compute(
                    stacked[i], self.params, engine=self._engine,
                    fast=self.fast and shape in self._warm_shapes,
                    fused=self.fused, seed=self.seed,
                )
                if recording:
                    obs.observe(
                        "batch_roundtrip_seconds",
                        time.perf_counter() - t0,
                        mode="serial",
                    )
                self._warm_shapes.add(shape)
                yield result.sat

    def _map_pool(self, stacked) -> Iterator[np.ndarray]:
        k, rows, cols = stacked.shape
        chunksize = max(1, k // (4 * self.workers))
        recording = obs.is_enabled()
        shm_in = shared_memory.SharedMemory(create=True, size=stacked.nbytes)
        shm_out = shared_memory.SharedMemory(create=True, size=stacked.nbytes)
        try:
            with obs.span("batch_map", mode="pool", matrices=k):
                np.ndarray(stacked.shape, dtype=np.float64, buffer=shm_in.buf)[:] = stacked
                outputs = np.ndarray(stacked.shape, dtype=np.float64, buffer=shm_out.buf)
                tasks = [(shm_in.name, shm_out.name, stacked.shape, i) for i in range(k)]
                # A crashed task is retried ONCE: SAT tasks are pure compute
                # into disjoint output slots, so re-running the undelivered
                # suffix of the batch (same shared blocks) is idempotent. A
                # second pool break is a systematic fault — surface it.
                yielded = 0
                retried = False
                while yielded < k:
                    try:
                        last = time.perf_counter() if recording else 0.0
                        for index in self._pool.map(
                            _worker_compute, tasks[yielded:], chunksize=chunksize
                        ):
                            if recording:
                                now = time.perf_counter()
                                obs.observe(
                                    "batch_roundtrip_seconds", now - last, mode="pool"
                                )
                                last = now
                            yield outputs[index].copy()
                            yielded += 1
                    except BrokenProcessPool as exc:
                        obs.inc("batch_worker_crashes_total")
                        if retried:
                            raise WorkerCrashed(
                                f"a batch worker died while computing "
                                f"{self.algo.name} on a {k}x{rows}x{cols} batch "
                                f"(task retry crashed too)"
                            ) from exc
                        retried = True
                        obs.inc("batch_task_retries")
                        self._restart_pool()
        finally:
            shm_in.close()
            shm_out.close()
            shm_in.unlink()
            shm_out.unlink()


def sat_batch(
    matrices: Sequence[np.ndarray],
    algorithm="1R1W",
    params: Optional[MachineParams] = None,
    *,
    workers: Optional[int] = None,
    fast: bool = True,
    fused: Union[bool, str] = True,
    seed: int = 0,
    **algo_kwargs,
) -> Iterator[np.ndarray]:
    """Compute the SAT of every matrix in a same-shape batch, in parallel.

    One-shot wrapper over :class:`BatchSession`: returns an iterator
    yielding one float64 SAT per input matrix, in input order (delivery
    is ordered even when workers finish out of order, so downstream
    consumers see a deterministic stream). The session — pool included —
    is torn down when the iterator is exhausted; amortize pool startup
    across batches by using :class:`BatchSession` directly.

    Parameters
    ----------
    matrices:
        Same-shape 2-D matrices. Mixed shapes raise
        :class:`~repro.errors.ShapeError` — a batch is one plan, one
        shared-memory layout.
    algorithm:
        Registry name (kwargs like kR1W's ``p`` forwarded) or an
        algorithm instance.
    workers:
        Process count; defaults to ``os.cpu_count()`` capped by the batch
        size. ``workers <= 1`` (or a single-matrix batch) runs serially
        in-process — same iterator contract, no pool.
    fast / fused:
        Forwarded to :meth:`~repro.sat.base.SATAlgorithm.compute` for
        warm runs; each worker's first matrix at a shape always runs
        counted to populate its plan tallies.
    seed:
        Block-ordering seed used for every matrix (results are
        order-independent; this keeps traces reproducible).

    Raises
    ------
    WorkerCrashed
        When a worker process dies without returning (the pool breaks).
    """
    stacked = _stack_batch(matrices)
    k = stacked.shape[0]
    if workers is None:
        workers = os.cpu_count() or 1
    workers = max(1, min(workers, k or 1))

    def run() -> Iterator[np.ndarray]:
        with BatchSession(
            algorithm, params, workers=workers, fast=fast, fused=fused,
            seed=seed, **algo_kwargs,
        ) as session:
            yield from session.map(stacked)

    return run()


def batch_counters(shape: Tuple[int, int], algorithm="1R1W",
                   params: Optional[MachineParams] = None, **algo_kwargs):
    """The per-matrix access counters a batch of this shape incurs.

    One counted run on an all-ones matrix — exact for the whole batch
    because HMM access patterns are data-independent. (All-ones, not
    zeros: the one value-sensitive micro-optimization in the block code
    skips the corner-offset write when the correction is exactly 0.0,
    which an all-zeros probe would hit everywhere.)
    """
    algo = _make_algorithm(algorithm, algo_kwargs)
    if params is None:
        params = MachineParams()
    result = algo.compute(np.ones(shape), params, use_plan_cache=False)
    return result.counters


def sat_batch_list(matrices: Sequence[np.ndarray], algorithm="1R1W",
                   params: Optional[MachineParams] = None,
                   **kwargs) -> List[np.ndarray]:
    """Eager convenience wrapper: the batch's SATs as a list."""
    return list(sat_batch(matrices, algorithm, params, **kwargs))
