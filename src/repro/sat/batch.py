"""Multi-core batch SAT frontend: persistent warm workers, pinned slabs.

The simulator is single-threaded Python, so one process leaves most of
the host idle. For the production-serving pattern — a stream of
same-shape matrices — this module keeps a pool of **persistent warm
worker processes** alive for the whole session:

* workers are forked once, at session construction, and survive across
  ``map`` calls; each holds ONE warm
  :class:`~repro.machine.engine.ExecutionEngine` for its whole life, so
  its first matrix at a shape compiles + measures the plan and every
  later matrix replays it through the fused backend — the per-worker
  analogue of the plan-cache serving loop. Plans can also be pre-warmed
  explicitly (:meth:`BatchSession.warm`, ``warm_shapes=``) through the
  engine's :meth:`~repro.machine.engine.ExecutionEngine.warm_plan` hook
  so the first *measured* batch already runs hot;
* matrices cross the process boundary through two **pinned
  shared-memory slabs** (one input, one output) leased to the batch in
  flight — the slot-lease idea of the cluster layer's ``LookupRing``
  applied to whole batches. The slabs are allocated once, grown
  geometrically when a bigger batch arrives, and unlinked only at
  :meth:`BatchSession.close`; workers keep their mapping attached
  between batches. Inputs are written straight into the slab (no pickle,
  no staging copy, dtype preserved) and workers write each SAT straight
  into its output slot — zero-copy in *and* out across the boundary;
* work dispatch is one small pipe message per worker per batch (a
  strided index list), and completion streams back as tiny ``(done,
  index)`` records, so the results iterator yields in input order as
  matrices finish — whatever order the workers run them in;
* a worker that dies mid-slab is detected immediately (its process
  sentinel wakes the collector), restarted fresh, and its unfinished
  indices are re-dispatched ONCE — SAT tasks are pure compute into
  disjoint output slots, so the retry is idempotent. A second death in
  the same batch is a systematic fault and surfaces as
  :class:`~repro.errors.WorkerCrashed`.

:class:`BatchSession` is the serving-shaped API: the pool, the slabs,
and each worker's plan cache survive across ``map`` calls, so pool
startup and per-worker warm-up are one-time costs amortized over the
session. One-shot :func:`sat_batch` wraps a session around a single
batch.

Counters are not shipped back per matrix: HMM access patterns are
data-independent, so every matrix of the batch has the *same* tallies.
:func:`batch_counters` recomputes them once, in-process.
"""

from __future__ import annotations

import os
import time
from multiprocessing import get_all_start_methods, get_context, shared_memory
from multiprocessing import resource_tracker
from multiprocessing.connection import wait as _connection_wait
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ConfigurationError, ShapeError, WorkerCrashed
from ..machine.params import MachineParams
from ..obs import runtime as obs

#: Environment knob used by the crash-surfacing tests: a worker processing
#: this batch index dies mid-task (``os._exit``), which is how a segfault
#: or OOM kill looks to the session. Never set outside tests.
CRASH_ENV_VAR = "REPRO_BATCH_CRASH_INDEX"

#: Companion knob for *transient*-crash tests: when set to a file path,
#: the poison task above only fires while that file exists — and removes
#: it on the way down — so the crash happens exactly once and the retry
#: of the unfinished indices succeeds. Never set outside tests.
CRASH_ONCE_ENV_VAR = "REPRO_BATCH_CRASH_ONCE_FLAG"

#: Timeout for one collector wait. Worker death wakes the collector via
#: the process sentinel, so this is pure belt-and-braces against a lost
#: wakeup, not the detection latency.
_WAIT_TIMEOUT = 1.0


def _batch_context():
    """Fork where available (workers inherit warm module state and the
    parent's resource tracker); the platform default elsewhere."""
    if "fork" in get_all_start_methods():
        return get_context("fork")
    return get_context()


def _validate_batch(matrices) -> Tuple[Sequence[np.ndarray], Tuple[int, int, int], np.dtype]:
    """Validate a batch; return (indexable arrays, (k, rows, cols), dtype).

    Accepts a sequence of 2-D matrices or an already-stacked ``(k, rows,
    cols)`` array. The dtype is the numpy common type of the inputs and
    is preserved across the slab transport — the float64 cast happens at
    compute time, exactly where the serial path does it, so pool results
    stay bit-identical to serial for every input dtype.
    """
    if isinstance(matrices, np.ndarray) and matrices.ndim == 3:
        k, rows, cols = matrices.shape
        if k and (rows == 0 or cols == 0):
            raise ShapeError(
                f"batch matrices must be non-empty 2-D, got {(rows, cols)}"
            )
        return matrices, matrices.shape, matrices.dtype
    arrays = [np.asarray(m) for m in matrices]
    if not arrays:
        return arrays, (0, 0, 0), np.dtype(np.float64)
    for i, a in enumerate(arrays):
        if a.ndim != 2 or 0 in a.shape:
            raise ShapeError(f"batch[{i}] must be a non-empty 2-D matrix, got {a.shape}")
        if a.shape != arrays[0].shape:
            raise ShapeError(
                f"batch matrices must share one shape (one cached plan, one "
                f"shared-memory layout): batch[0] is {arrays[0].shape}, "
                f"batch[{i}] is {a.shape}"
            )
    dtype = np.result_type(*arrays)
    return arrays, (len(arrays), *arrays[0].shape), dtype


def _stack_batch(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Validate a batch and stack it into one (k, rows, cols) float64 array.

    Kept for callers that want an eager stacked copy; the session itself
    writes validated inputs straight into its shared slab instead.
    """
    arrays, shape, _dtype = _validate_batch(matrices)
    if shape[0] == 0:
        return np.empty((0, 0, 0), dtype=np.float64)
    if isinstance(arrays, np.ndarray):
        return arrays.astype(np.float64, copy=False)
    return np.stack(arrays).astype(np.float64, copy=False)


def _make_algorithm(algorithm, algo_kwargs):
    from .registry import make_algorithm

    if isinstance(algorithm, str):
        return make_algorithm(algorithm, **algo_kwargs)
    if algo_kwargs:
        raise TypeError("algorithm kwargs only apply to registry names")
    return algorithm


# =============================================================================
# Worker side
# =============================================================================


def _maybe_crash(index: int) -> None:
    """The poison-task hook: die at a configured batch index (tests only)."""
    crash_at = os.environ.get(CRASH_ENV_VAR)
    if crash_at is None or int(crash_at) != index:
        return
    once_flag = os.environ.get(CRASH_ONCE_ENV_VAR)
    if once_flag is None:
        os._exit(13)
    if os.path.exists(once_flag):
        os.unlink(once_flag)  # arm-once: the retried task survives
        os._exit(13)


def _attach_slab(attached: dict, role: str, name: str) -> shared_memory.SharedMemory:
    """(Re)attach one slab by name, dropping a stale mapping for the role.

    With fork-started workers the resource tracker process is shared with
    the parent, so attach-time registration is a harmless duplicate and
    the parent's ``unlink()`` performs the one unregister.
    """
    current = attached.get(role)
    if current is not None and current[0] == name:
        return current[1]
    if current is not None:
        current[1].close()
    shm = shared_memory.SharedMemory(name=name)
    attached[role] = (name, shm)
    return shm


def _warm_worker_main(worker_id, conn, algorithm, params, fast, fused, seed,
                      warm_shapes) -> None:
    """The persistent worker loop: one warm engine, attached slabs, RPCs.

    Messages are small tuples; bulk data never rides the pipe. Every
    reply to a ``run`` echoes the batch generation so the parent can
    discard stragglers from an abandoned batch. A worker never lets a
    task exception escape the loop — it ships the exception back as a
    ``task_error`` record instead (the parent treats a dead pipe, not a
    reply, as a crash).
    """
    from ..machine.engine import ExecutionEngine, PlanCache

    engine = ExecutionEngine(cache=PlanCache())
    attached: dict = {}
    seen_shapes = set()
    warmed: List[Tuple[int, int]] = []
    tasks_done = 0
    batches = 0

    def warm_one(rows: int, cols: int) -> bool:
        info = engine.warm_plan(
            algorithm, rows, cols, params, fused=fused, seed=seed
        )
        seen_shapes.add((rows, cols))
        warmed.append((rows, cols))
        return info["compiled"]

    for rows, cols in warm_shapes:
        warm_one(rows, cols)

    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            op = msg[0]
            if op == "run":
                gen, in_name, out_name, shape, dtype_str, indices = msg[1:]
                shm_in = _attach_slab(attached, "in", in_name)
                shm_out = _attach_slab(attached, "out", out_name)
                inputs = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=shm_in.buf)
                outputs = np.ndarray(shape, dtype=np.float64, buffer=shm_out.buf)
                matrix_shape = shape[1:]
                for index in indices:
                    _maybe_crash(index)
                    try:
                        result = algorithm.compute(
                            inputs[index], params, engine=engine,
                            fast=fast and matrix_shape in seen_shapes,
                            fused=fused, seed=seed,
                        )
                    except Exception as exc:  # noqa: BLE001 — ship, don't die
                        try:
                            conn.send(("task_error", gen, index, exc))
                        except Exception:  # unpicklable exception
                            conn.send((
                                "task_error", gen, index,
                                RuntimeError(f"{type(exc).__name__}: {exc}"),
                            ))
                        continue
                    seen_shapes.add(matrix_shape)
                    outputs[index] = result.sat
                    tasks_done += 1
                    conn.send(("done", gen, index))
                batches += 1
                conn.send(("batch_end", gen))
            elif op == "warm":
                compiled = warm_one(msg[1], msg[2])
                conn.send(("warmed", {
                    "worker": worker_id,
                    "pid": os.getpid(),
                    "compiled": compiled,
                }))
            elif op == "stats":
                conn.send(("stats", {
                    "worker": worker_id,
                    "pid": os.getpid(),
                    "tasks": tasks_done,
                    "batches": batches,
                    "warmed_shapes": list(warmed),
                    "engine": engine.stats(),
                }))
            elif op == "stop":
                break
    finally:
        for _name, shm in attached.values():
            try:
                shm.close()
            except OSError:
                pass
        conn.close()


# =============================================================================
# Parent side
# =============================================================================


class _WorkerHandle:
    """Parent-side record of one persistent worker."""

    __slots__ = ("worker_id", "proc", "conn", "epoch", "inflight_gen", "assigned")

    def __init__(self, worker_id, proc, conn, epoch):
        self.worker_id = worker_id
        self.proc = proc
        self.conn = conn
        self.epoch = epoch
        self.inflight_gen: Optional[int] = None
        self.assigned: set = set()

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid


class BatchSession:
    """A long-lived multi-core SAT server: warm workers, warm plan caches.

    Construction forks the persistent workers; every ``map`` call streams
    one batch through them over the session's pinned shared-memory slabs.
    Worker state — the process itself, its attached slab mapping, and its
    engine's plan cache — persists across batches, so repeated same-shape
    batches run entirely on the fused fast path after each worker's first
    matrix (or immediately, after :meth:`warm`). Use as a context
    manager, or call :meth:`close`.

    ``workers=1`` (or ``0``) degenerates to an in-process serial loop
    with one warm engine — same iterator contract, no pool — which is
    also the measurement baseline for the throughput benchmark.

    ``warm_shapes`` pre-compiles those plans (and their fused schedules)
    in every worker before the constructor returns; restarted workers
    re-warm the same set, so a crash never silently cools the pool.
    """

    def __init__(
        self,
        algorithm="1R1W",
        params: Optional[MachineParams] = None,
        *,
        workers: Optional[int] = None,
        fast: bool = True,
        fused: Union[bool, str] = True,
        seed: int = 0,
        warm_shapes: Sequence[Tuple[int, int]] = (),
        **algo_kwargs,
    ):
        self.algo = _make_algorithm(algorithm, algo_kwargs)
        self.params = params if params is not None else MachineParams()
        if workers is None:
            workers = os.cpu_count() or 1
        self.workers = max(1, workers)
        self.fast = fast
        self.fused = fused
        self.seed = seed
        self._ctx = _batch_context()
        self._workers: Optional[List[_WorkerHandle]] = None
        self._engine = None  # serial path's session engine
        self._warm_shapes = set()  # serial path's fast-run gate
        self._slabs: dict = {}  # role -> SharedMemory
        self._gen = 0
        self._restarts = 0
        self._prewarmed: List[Tuple[int, int]] = []
        self._batch_ctx: Optional[tuple] = None  # (in_name, out_name, shape, dtype_str)
        self._closed = False
        if self.workers > 1:
            # Pre-start the tracker so forked workers share it with the
            # parent instead of each spawning (and leak-warning from)
            # their own.
            resource_tracker.ensure_running()
            self._workers = [self._spawn(i) for i in range(self.workers)]
        for shape in warm_shapes:
            self.warm((int(shape[0]), int(shape[1])))

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self, worker_id: int) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_warm_worker_main,
            args=(worker_id, child_conn, self.algo, self.params, self.fast,
                  self.fused, self.seed, list(self._prewarmed)),
            daemon=True,
            name=f"repro-batch-{worker_id}",
        )
        proc.start()
        child_conn.close()
        return _WorkerHandle(worker_id, proc, parent_conn, epoch=0)

    def _restart_worker(self, handle: _WorkerHandle) -> None:
        """Replace a dead worker in place; its replacement re-warms the
        session's pre-warmed shapes but starts with a cold plan cache for
        everything else — correctness is unaffected (the fused backend's
        outputs are identical counted or warm)."""
        try:
            handle.conn.close()
        except OSError:
            pass
        handle.proc.join(timeout=1.0)
        fresh = self._spawn(handle.worker_id)
        handle.proc = fresh.proc
        handle.conn = fresh.conn
        handle.epoch += 1
        handle.inflight_gen = None
        handle.assigned = set()
        self._restarts += 1
        obs.inc("batch_worker_restarts_total")

    def close(self) -> None:
        if self._workers is not None:
            for handle in self._workers:
                try:
                    handle.conn.send(("stop",))
                except (OSError, ValueError):
                    pass
            for handle in self._workers:
                handle.proc.join(timeout=3.0)
                if handle.proc.is_alive():
                    handle.proc.terminate()
                    handle.proc.join(timeout=1.0)
                try:
                    handle.conn.close()
                except OSError:
                    pass
            self._workers = None
        self._release_slabs()
        self._closed = True

    def __enter__(self) -> "BatchSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- slabs ---------------------------------------------------------------

    def _ensure_slab(self, role: str, nbytes: int) -> shared_memory.SharedMemory:
        """The pinned slab for ``role``, grown geometrically on demand.

        Growth allocates a fresh block (shared memory cannot be resized
        in place) and unlinks the old one; workers drop their stale
        mapping when the next ``run`` message names the new block.
        """
        current = self._slabs.get(role)
        if current is not None and current.size >= nbytes:
            return current
        size = max(nbytes, 2 * current.size if current is not None else nbytes)
        if current is not None:
            current.close()
            current.unlink()
        slab = shared_memory.SharedMemory(create=True, size=size)
        self._slabs[role] = slab
        obs.set_gauge(
            "batch_slab_bytes", sum(s.size for s in self._slabs.values())
        )
        return slab

    def _release_slabs(self) -> None:
        for slab in self._slabs.values():
            try:
                slab.close()
                slab.unlink()
            except OSError:
                pass
        self._slabs = {}

    def slab_bytes(self) -> int:
        """Total bytes currently pinned in the session's slabs."""
        return sum(s.size for s in self._slabs.values())

    # -- warm-up and introspection -------------------------------------------

    def warm(self, shape: Tuple[int, int]) -> None:
        """Pre-warm every worker's plan cache (and fused schedule) for
        ``shape`` through :meth:`ExecutionEngine.warm_plan`, so later
        batches at this shape start on the fused fast path immediately.
        Optional — the first batch warms implicitly — but it moves the
        one-time compile + counted run out of measured steady-state
        throughput."""
        shape = (int(shape[0]), int(shape[1]))
        if self._workers is None:
            from ..machine.engine import ExecutionEngine, PlanCache

            if self._engine is None:
                self._engine = ExecutionEngine(cache=PlanCache())
            self._engine.warm_plan(
                self.algo, shape[0], shape[1], self.params,
                fused=self.fused, seed=self.seed,
            )
            self._warm_shapes.add(shape)
        else:
            self._quiesce()
            for handle in self._workers:
                handle.conn.send(("warm", shape[0], shape[1]))
            for handle in self._workers:
                self._recv_reply(handle, "warmed")
        if shape not in self._prewarmed:
            self._prewarmed.append(shape)
        obs.inc("batch_plan_prewarms_total")

    def worker_stats(self) -> List[dict]:
        """Per-worker identity and engine statistics (pid, tasks served,
        batches, warmed shapes, plan-cache hits/misses/compiles). For the
        serial session this is the one in-process engine. Call between
        batches — a batch in flight is drained first."""
        if self._workers is None:
            engine = self._engine.stats() if self._engine is not None else {}
            return [{
                "worker": 0, "pid": os.getpid(), "tasks": None,
                "batches": None, "warmed_shapes": sorted(self._warm_shapes),
                "engine": engine,
            }]
        self._quiesce()
        for handle in self._workers:
            handle.conn.send(("stats",))
        return [self._recv_reply(handle, "stats") for handle in self._workers]

    def describe(self) -> dict:
        """The session's warm-worker configuration, benchmark-reportable."""
        return {
            "mode": "serial" if self._workers is None else "pool",
            "workers": self.workers,
            "slab_in_bytes": self._slabs["in"].size if "in" in self._slabs else 0,
            "slab_out_bytes": self._slabs["out"].size if "out" in self._slabs else 0,
            "prewarmed_shapes": [list(s) for s in self._prewarmed],
            "worker_restarts": self._restarts,
        }

    def _recv_reply(self, handle: _WorkerHandle, op: str):
        """Wait for one typed RPC reply, skipping stale batch stragglers."""
        while True:
            try:
                msg = handle.conn.recv()
            except (EOFError, OSError) as exc:
                raise WorkerCrashed(
                    f"batch worker {handle.worker_id} died during {op!r}"
                ) from exc
            if msg[0] == op:
                return msg[1] if len(msg) > 1 else None

    # -- batch execution -----------------------------------------------------

    def map(self, matrices, *, copy: bool = True) -> Iterator[np.ndarray]:
        """SATs for one same-shape batch, as an input-ordered iterator.

        ``copy=False`` yields zero-copy views into the session's output
        slab — valid until the next ``map``/``close`` (the slab lease
        passes to the next batch); copy them if they must outlive it.
        """
        if self._closed:
            raise ConfigurationError("batch session is closed")
        arrays, shape, dtype = _validate_batch(matrices)
        if shape[0] == 0:
            return iter(())
        mode = "serial" if self._workers is None else "pool"
        obs.inc("batch_batches_total", mode=mode)
        obs.inc("batch_matrices_total", shape[0], mode=mode)
        if self._workers is None:
            return self._map_serial(arrays, shape)
        return self._map_pool(arrays, shape, dtype, copy)

    def _map_serial(self, arrays, shape) -> Iterator[np.ndarray]:
        from ..machine.engine import ExecutionEngine, PlanCache

        if self._engine is None:
            self._engine = ExecutionEngine(cache=PlanCache())
        matrix_shape = shape[1:]
        recording = obs.is_enabled()
        with obs.span("batch_map", mode="serial", matrices=shape[0]):
            for i in range(shape[0]):
                t0 = time.perf_counter() if recording else 0.0
                result = self.algo.compute(
                    arrays[i], self.params, engine=self._engine,
                    fast=self.fast and matrix_shape in self._warm_shapes,
                    fused=self.fused, seed=self.seed,
                )
                if recording:
                    obs.observe(
                        "batch_roundtrip_seconds",
                        time.perf_counter() - t0,
                        mode="serial",
                    )
                self._warm_shapes.add(matrix_shape)
                yield result.sat

    def _quiesce(self) -> None:
        """Run every worker's in-flight batch dry (an abandoned ``map``
        iterator leaves one behind). The slabs are about to be re-leased,
        so no worker may still be writing into them."""
        if self._workers is None:
            return
        for handle in self._workers:
            while handle.inflight_gen is not None:
                if handle.conn.poll(0.05):
                    try:
                        msg = handle.conn.recv()
                    except (EOFError, OSError):
                        self._restart_worker(handle)
                        break
                    if msg[0] == "batch_end" and msg[1] == handle.inflight_gen:
                        handle.inflight_gen = None
                        handle.assigned = set()
                elif not handle.proc.is_alive():
                    self._restart_worker(handle)
                    break

    def _map_pool(self, arrays, shape, dtype, copy) -> Iterator[np.ndarray]:
        k, rows, cols = shape
        self._quiesce()
        itemsize = np.dtype(dtype).itemsize
        shm_in = self._ensure_slab("in", k * rows * cols * itemsize)
        shm_out = self._ensure_slab("out", k * rows * cols * 8)
        inputs = np.ndarray(shape, dtype=dtype, buffer=shm_in.buf)
        outputs = np.ndarray(shape, dtype=np.float64, buffer=shm_out.buf)
        if isinstance(arrays, np.ndarray):
            inputs[:] = arrays
        else:
            for i, a in enumerate(arrays):
                inputs[i] = a
        self._gen += 1
        gen = self._gen
        dtype_str = np.dtype(dtype).str
        self._batch_ctx = (shm_in.name, shm_out.name, shape, dtype_str)
        for handle in self._workers:
            indices = list(range(handle.worker_id, k, self.workers))
            if not indices:
                continue
            handle.assigned = set(indices)
            handle.inflight_gen = gen
            handle.conn.send((
                "run", gen, shm_in.name, shm_out.name, shape, dtype_str, indices,
            ))
        recording = obs.is_enabled()
        ready: set = set()
        next_yield = 0
        retried = False
        last = time.perf_counter() if recording else 0.0
        with obs.span("batch_map", mode="pool", matrices=k):
            while next_yield < k:
                while next_yield in ready:
                    ready.discard(next_yield)
                    if recording:
                        now = time.perf_counter()
                        obs.observe(
                            "batch_roundtrip_seconds", now - last, mode="pool"
                        )
                        last = now
                    yield outputs[next_yield].copy() if copy else outputs[next_yield]
                    next_yield += 1
                if next_yield >= k:
                    break
                retried = self._pump(gen, ready, retried, next_yield,
                                     k, rows, cols)

    def _pump(self, gen: int, ready: set, retried: bool, next_yield: int,
              k: int, rows: int, cols: int) -> bool:
        """Wait for progress on the in-flight batch; handle one wave of
        messages and crashes. Returns the updated retried flag."""
        live = [h for h in self._workers if h.inflight_gen == gen]
        if not live:
            # Every worker reported batch_end yet results are missing —
            # a protocol fault, not a crash; never spin silently.
            missing = k - next_yield - len(ready)
            raise WorkerCrashed(
                f"batch workers finished but {missing} result(s) "
                f"were never delivered"
            )
        waitables = []
        by_obj = {}
        for handle in live:
            waitables.append(handle.conn)
            by_obj[id(handle.conn)] = handle
            waitables.append(handle.proc.sentinel)
            by_obj[handle.proc.sentinel] = handle
        crashed: List[_WorkerHandle] = []
        for obj in _connection_wait(waitables, timeout=_WAIT_TIMEOUT):
            handle = by_obj[id(obj)] if not isinstance(obj, int) else by_obj[obj]
            if handle in crashed:
                continue
            if obj is handle.conn:
                try:
                    msg = handle.conn.recv()
                except (EOFError, OSError):
                    crashed.append(handle)
                    continue
                self._handle_message(handle, gen, msg, ready)
            else:
                # Process sentinel: drain anything it managed to send,
                # then treat the remainder as crashed work.
                try:
                    while handle.conn.poll():
                        self._handle_message(handle, gen, handle.conn.recv(), ready)
                except (EOFError, OSError):
                    pass
                if handle.inflight_gen == gen:
                    crashed.append(handle)
        for handle in crashed:
            retried = self._recover_crash(handle, gen, retried, k, rows, cols)
        return retried

    def _handle_message(self, handle: _WorkerHandle, gen: int, msg: tuple,
                        ready: set) -> None:
        op = msg[0]
        if len(msg) > 1 and msg[1] != gen:
            return  # straggler from an abandoned batch
        if op == "done":
            handle.assigned.discard(msg[2])
            ready.add(msg[2])
        elif op == "batch_end":
            handle.inflight_gen = None
            handle.assigned = set()
        elif op == "task_error":
            handle.assigned.discard(msg[2])
            raise msg[3]

    def _recover_crash(self, handle: _WorkerHandle, gen: int, retried: bool,
                       k: int, rows: int, cols: int) -> bool:
        """Restart a dead worker and re-dispatch its unfinished indices —
        once per batch. The retry is idempotent: tasks are pure compute
        into disjoint output slots of the same leased slab."""
        obs.inc("batch_worker_crashes_total")
        exitcode = handle.proc.exitcode
        cause = RuntimeError(
            f"batch worker {handle.worker_id} (pid {handle.pid}) exited "
            f"with code {exitcode} mid-batch"
        )
        unfinished = sorted(handle.assigned)
        if retried:
            handle.inflight_gen = None
            raise WorkerCrashed(
                f"a batch worker died while computing {self.algo.name} on a "
                f"{k}x{rows}x{cols} batch (task retry crashed too)"
            ) from cause
        obs.inc("batch_task_retries")
        self._restart_worker(handle)
        in_name, out_name, shape, dtype_str = self._batch_ctx
        handle.assigned = set(unfinished)
        handle.inflight_gen = gen
        handle.conn.send((
            "run", gen, in_name, out_name, shape, dtype_str, unfinished,
        ))
        return True


def sat_batch(
    matrices,
    algorithm="1R1W",
    params: Optional[MachineParams] = None,
    *,
    workers: Optional[int] = None,
    fast: bool = True,
    fused: Union[bool, str] = True,
    seed: int = 0,
    **algo_kwargs,
) -> Iterator[np.ndarray]:
    """Compute the SAT of every matrix in a same-shape batch, in parallel.

    One-shot wrapper over :class:`BatchSession`: returns an iterator
    yielding one float64 SAT per input matrix, in input order (delivery
    is ordered even when workers finish out of order, so downstream
    consumers see a deterministic stream). The session — warm workers
    and slabs included — is torn down when the iterator is exhausted;
    amortize worker startup across batches by using
    :class:`BatchSession` directly.

    Parameters
    ----------
    matrices:
        Same-shape 2-D matrices (or a stacked 3-D array). Mixed shapes
        raise :class:`~repro.errors.ShapeError` — a batch is one plan,
        one slab layout.
    algorithm:
        Registry name (kwargs like kR1W's ``p`` forwarded) or an
        algorithm instance.
    workers:
        Worker-process count; defaults to ``os.cpu_count()`` capped by
        the batch size. ``workers <= 1`` (or a single-matrix batch) runs
        serially in-process — same iterator contract, no pool.
    fast / fused:
        Forwarded to :meth:`~repro.sat.base.SATAlgorithm.compute` for
        warm runs; each worker's first matrix at a shape always runs
        counted to populate its plan tallies.
    seed:
        Block-ordering seed used for every matrix (results are
        order-independent; this keeps traces reproducible).

    Raises
    ------
    WorkerCrashed
        When a worker process dies mid-batch and its single idempotent
        retry dies too.
    """
    arrays, shape, _dtype = _validate_batch(matrices)
    k = shape[0]
    if workers is None:
        workers = os.cpu_count() or 1
    workers = max(1, min(workers, k or 1))

    def run() -> Iterator[np.ndarray]:
        with BatchSession(
            algorithm, params, workers=workers, fast=fast, fused=fused,
            seed=seed, **algo_kwargs,
        ) as session:
            yield from session.map(arrays)

    return run()


def batch_counters(shape: Tuple[int, int], algorithm="1R1W",
                   params: Optional[MachineParams] = None, **algo_kwargs):
    """The per-matrix access counters a batch of this shape incurs.

    One counted run on an all-ones matrix — exact for the whole batch
    because HMM access patterns are data-independent. (All-ones, not
    zeros: the one value-sensitive micro-optimization in the block code
    skips the corner-offset write when the correction is exactly 0.0,
    which an all-zeros probe would hit everywhere.)
    """
    algo = _make_algorithm(algorithm, algo_kwargs)
    if params is None:
        params = MachineParams()
    result = algo.compute(np.ones(shape), params, use_plan_cache=False)
    return result.counters


def sat_batch_list(matrices, algorithm="1R1W",
                   params: Optional[MachineParams] = None,
                   **kwargs) -> List[np.ndarray]:
    """Eager convenience wrapper: the batch's SATs as a list."""
    return list(sat_batch(matrices, algorithm, params, **kwargs))
