"""Prefix-sum (scan) kernels used by the 2R2W/4R4W/2R1W families.

A *column scan* replaces each column of a buffer region with its prefix
sums. One thread owns one column and walks downward; a warp of ``w``
adjacent threads therefore reads/writes ``w`` consecutive words of each
row — fully coalesced. The kernel is a set of strip tasks, one per
``w``-wide column strip.

A *row scan* (one thread per row, walking right) makes every warp touch
``w`` different rows at the same column — ``w`` distinct address groups,
i.e. stride access. This is the access pattern that makes plain 2R2W slow
and motivates 4R4W's transposes; it is provided for exactly that
comparison.

Both scans skip rewriting the first row/column (its prefix sum is itself),
matching the paper's pseudo-code which performs ``n - 1`` additions per
line.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..machine.macro.executor import BlockContext, BlockTask
from ..machine.engine.fused import (
    ColumnScanSpec,
    RowScanStrideSpec,
    attach_fused_spec,
)


def column_scan_tasks(
    buf: str,
    n_rows: int,
    n_cols: int,
    width: int,
    *,
    row0: int = 0,
    col0: int = 0,
) -> List[BlockTask]:
    """Tasks that column-scan the region ``[row0:row0+n_rows, col0:col0+n_cols]``.

    ``n_cols`` must be a multiple of ``width``; each task owns one strip.
    Reads ``n_rows * n_cols`` and writes ``(n_rows - 1) * n_cols`` words,
    all coalesced.
    """
    if n_cols % width != 0:
        raise ValueError(f"n_cols={n_cols} must be a multiple of width={width}")

    def make(strip: int) -> BlockTask:
        c = col0 + strip * width

        def task(ctx: BlockContext) -> None:
            data = ctx.gm.read_strip(buf, row0, c, n_rows, width)
            np.cumsum(data, axis=0, out=data)
            if n_rows > 1:
                ctx.gm.write_strip(buf, row0 + 1, c, data[1:])

        return task

    return attach_fused_spec(
        [make(k) for k in range(n_cols // width)],
        ColumnScanSpec(buf, row0, col0, n_rows, n_cols),
    )


def row_scan_tasks_stride(
    buf: str,
    n_rows: int,
    n_cols: int,
    width: int,
) -> List[BlockTask]:
    """Tasks that row-scan via stride access (the naive 2R2W second phase).

    One thread per row; a warp's simultaneous accesses hit ``width``
    different rows, so every element access is a stride op. Reads
    ``n_rows * n_cols`` and writes ``n_rows * (n_cols - 1)`` words.
    """
    if n_rows % width != 0:
        raise ValueError(f"n_rows={n_rows} must be a multiple of width={width}")

    def make(strip: int) -> BlockTask:
        r = strip * width

        def task(ctx: BlockContext) -> None:
            data = ctx.gm.read_strip_stride(buf, r, 0, width, n_cols)
            np.cumsum(data, axis=1, out=data)
            if n_cols > 1:
                ctx.gm.write_strip_stride(buf, r, 1, data[:, 1:])

        return task

    return attach_fused_spec(
        [make(k) for k in range(n_rows // width)],
        RowScanStrideSpec(buf, n_rows, n_cols),
    )


def seeded_column_scan_tasks(
    buf: str,
    n_rows: int,
    n_cols: int,
    width: int,
    seed_for_strip: Callable[[int, BlockContext], Optional[np.ndarray]],
    *,
    col0: int = 0,
    row_range_for_strip: Optional[Callable[[int], range]] = None,
) -> List[BlockTask]:
    """Column-scan tasks whose running sums start from per-strip seed rows.

    kR1W's triangle phases scan block-sum matrices starting from border
    values produced by already-final regions. ``seed_for_strip(strip, ctx)``
    returns a length-``width`` seed vector (reading it through ``ctx.gm``
    so it is counted) or ``None`` for a zero seed.
    ``row_range_for_strip`` restricts which rows of the strip are scanned
    (triangular regions scan different extents per strip); it must be a
    contiguous range.
    """
    if n_cols % width != 0:
        raise ValueError(f"n_cols={n_cols} must be a multiple of width={width}")

    def make(strip: int) -> BlockTask:
        c = col0 + strip * width

        def task(ctx: BlockContext) -> None:
            rows = (
                range(n_rows)
                if row_range_for_strip is None
                else row_range_for_strip(strip)
            )
            if len(rows) == 0:
                return
            r_lo, r_hi = rows.start, rows.stop
            seed = seed_for_strip(strip, ctx)
            data = ctx.gm.read_strip(buf, r_lo, c, r_hi - r_lo, width)
            np.cumsum(data, axis=0, out=data)
            if seed is not None:
                data += seed
            ctx.gm.write_strip(buf, r_lo, c, data)

        return task

    return [make(k) for k in range(n_cols // width)]
