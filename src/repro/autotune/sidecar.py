"""JSON sidecar persisting learned autotune choices across processes.

Keyed like the engine's :class:`~repro.machine.engine.cache.PlanCache`
(shape + machine params + request kind in the key string), stored next to
the other on-disk caches (default ``~/.cache/repro/autotune.json``,
overridable via ``REPRO_AUTOTUNE_PATH`` — the same env-var/default idiom
as the native backend's compiled-kernel cache).

The file is versioned and corruption-tolerant by construction:

* Writes go through a same-directory temporary file + ``os.replace``, so
  a crash mid-save leaves the previous generation intact, never a
  half-written one.
* Loads treat *anything* unexpected — truncated JSON, wrong version,
  implausible statistics, a directory where the file should be — as
  "start fresh from the model prior", logged as a single warning. Learned
  measurements are an optimization, never a correctness input, so losing
  them must never take the planner down.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from typing import Dict, Optional, Tuple

from .bandit import KeyState

__all__ = ["ENV_VAR", "SIDECAR_VERSION", "default_path", "load", "save"]

logger = logging.getLogger(__name__)

ENV_VAR = "REPRO_AUTOTUNE_PATH"
SIDECAR_VERSION = 1


def default_path() -> str:
    """``$REPRO_AUTOTUNE_PATH`` or ``~/.cache/repro/autotune.json``."""
    env = os.environ.get(ENV_VAR)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "autotune.json")


def load(path: str) -> Tuple[Dict[str, KeyState], str]:
    """Read learned state from ``path``.

    Returns ``(keys, status)`` where status is one of ``"loaded"``,
    ``"missing"`` (no file yet — the normal first run), or ``"corrupt"``
    (anything unreadable; an empty state is returned and one warning is
    logged so the fallback is visible but not fatal).
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
        if not isinstance(raw, dict):
            raise ValueError(f"expected a JSON object, got {type(raw).__name__}")
        version = raw.get("version")
        if version != SIDECAR_VERSION:
            raise ValueError(f"unsupported sidecar version {version!r}")
        keys = {
            str(key): KeyState.from_dict(entry)
            for key, entry in dict(raw["keys"]).items()
        }
        return keys, "loaded"
    except FileNotFoundError:
        return {}, "missing"
    except (OSError, ValueError, KeyError, TypeError) as exc:
        logger.warning(
            "autotune sidecar %s unreadable (%s); falling back to the model prior",
            path,
            exc,
        )
        return {}, "corrupt"


def save(path: str, keys: Dict[str, KeyState]) -> None:
    """Atomically write ``keys`` to ``path`` (temp file + rename)."""
    payload = {
        "version": SIDECAR_VERSION,
        "keys": {key: state.as_dict() for key, state in keys.items()},
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(prefix=".autotune-", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
