"""The online planner: model-ranked decisions refined by measurement.

:class:`AutotunePlanner` owns one :class:`~repro.autotune.bandit.KeyState`
per ``(shape, dtype, kind, mode)`` key. A :meth:`decide` ranks the
candidate arms — cost-model prior blended with measured latencies, UCB
optimism for under-measured arms, an epsilon-greedy probe floor — and
returns a :class:`Decision` naming the winning configuration and *why*
(``prior`` / ``exploit`` / ``explore``). Callers execute the winner and
feed the wall-clock back through :meth:`observe`, which also trickles the
latency into the :mod:`repro.obs` histograms (``autotune_latency_seconds``)
so the same numbers surface in ``python -m repro stats``.

Learned statistics persist through the JSON sidecar
(:mod:`repro.autotune.sidecar`): loaded once at construction, autosaved
every ``autosave_every`` observations (only from the process that created
the planner — forked batch workers inherit the state read-only rather
than racing each other's writes), and saved explicitly via :meth:`save`.

The process-wide planner behind ``algorithm="auto"`` is
:func:`default_planner`; :func:`autotune_stats` reports it without
creating it, which is what ``ExecutionEngine.stats()`` calls into.
"""

from __future__ import annotations

import dataclasses
import os
import random
import threading
import time
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..machine.params import MachineParams
from ..obs import runtime as obs_runtime
from . import sidecar
from .arms import Arm, compute_arms
from .bandit import KeyState

__all__ = [
    "Decision",
    "AutotunePlanner",
    "default_planner",
    "set_default_planner",
    "autotune_stats",
]

#: Sentinel distinguishing "use the configured default path" from an
#: explicit ``path=None`` (no persistence at all).
_UNSET = object()


@dataclasses.dataclass(frozen=True)
class Decision:
    """One planner choice: which arm to run, under which key, and why."""

    key: str
    arm: Arm
    mode: str  # "prior" (no measurements), "exploit", or "explore"
    predicted: float  # the winning arm's model prior

    @property
    def algorithm(self) -> Optional[str]:
        return self.arm.algorithm

    @property
    def arm_id(self) -> str:
        return self.arm.arm_id


class AutotunePlanner:
    """Cost-model-guided online configuration planner (thread-safe)."""

    def __init__(
        self,
        *,
        model=None,
        path: Union[str, None, object] = _UNSET,
        prior_weight: float = 1.0,
        ucb_c: float = 0.35,
        epsilon: float = 0.05,
        seed: int = 0,
        autosave_every: int = 64,
    ):
        if model is None:
            from ..analysis.calibration import default_model

            model = default_model()
        self.model = model
        self.prior_weight = float(prior_weight)
        self.ucb_c = float(ucb_c)
        self.epsilon = float(epsilon)
        self.autosave_every = int(autosave_every)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._keys: Dict[str, KeyState] = {}
        self._pid = os.getpid()
        self._observations_since_save = 0
        self.path: Optional[str]
        if path is _UNSET:
            self.path = sidecar.default_path()
        else:
            self.path = path  # type: ignore[assignment]
        self.sidecar_status = "disabled"
        if self.path is not None:
            self._keys, self.sidecar_status = sidecar.load(self.path)
            obs_runtime.inc(
                "autotune_sidecar_loads_total", status=self.sidecar_status
            )

    # -- keys ----------------------------------------------------------------

    @staticmethod
    def key_for(
        rows: int,
        cols: int,
        dtype,
        params: Optional[MachineParams],
        kind: str = "compute",
        mode: str = "counted",
    ) -> str:
        """PlanCache-style key: shape + dtype + machine params + request
        kind + execution mode (fast and counted runs must not share
        latency pools — they differ by orders of magnitude)."""
        if params is None:
            machine = "w=auto"
        else:
            machine = f"w={params.width},l={params.latency}"
        return (
            f"{rows}x{cols}/{np.dtype(dtype).name}/{machine}/{kind}/{mode}"
        )

    # -- deciding ------------------------------------------------------------

    def decide(
        self,
        key: str,
        arms: Sequence[Arm],
        *,
        explore: bool = True,
    ) -> Decision:
        """Pick an arm for ``key``.

        With zero recorded measurements the choice is deterministic — the
        lowest model prior, ties broken on arm id — so a fresh planner is
        exactly the cost model. ``explore=False`` forces the exploit
        choice (steady-state serving, benchmark gates).
        """
        if not arms:
            raise ValueError(f"no feasible arms for autotune key {key!r}")
        by_id = {arm.arm_id: arm for arm in arms}
        with self._lock:
            state = self._keys.get(key)
            if state is None:
                state = self._keys[key] = KeyState()
            state.merge_priors({arm.arm_id: arm.prior for arm in arms})
            measured = state.total_measurements()
            if measured == 0:
                chosen = min(arms, key=lambda a: (a.prior, a.arm_id)).arm_id
                mode = "prior"
            elif explore and self._rng.random() < self.epsilon:
                chosen = self._restrict(state.least_measured(), by_id, arms)
                mode = "explore"
            else:
                best = self._restrict(state.best(self.prior_weight), by_id, arms)
                if explore:
                    ranked = [
                        arm_id
                        for arm_id, _ in state.ranked(self.prior_weight, self.ucb_c)
                        if arm_id in by_id
                    ]
                    chosen = ranked[0] if ranked else best
                else:
                    chosen = best
                mode = "exploit" if chosen == best else "explore"
            state.decisions += 1
            state.modes[mode] += 1
            arm = by_id[chosen]
        obs_runtime.inc("autotune_decisions_total", key=key, mode=mode)
        obs_runtime.set_gauge("autotune_arms", float(len(arms)), key=key)
        return Decision(key=key, arm=arm, mode=mode, predicted=arm.prior)

    @staticmethod
    def _restrict(arm_id: Optional[str], by_id: Dict[str, Arm], arms) -> str:
        """Clamp a bandit suggestion to the arms feasible *this* call
        (stats may remember arms a different enumeration offered)."""
        if arm_id in by_id:
            return arm_id
        return min(arms, key=lambda a: (a.prior, a.arm_id)).arm_id

    def decide_compute(
        self,
        rows: int,
        cols: int,
        dtype,
        params: Optional[MachineParams] = None,
        *,
        kind: str = "compute",
        mode: str = "counted",
        fused_options: Sequence[Optional[str]] = (None,),
        max_p_candidates: Optional[int] = None,
        explore: bool = True,
    ) -> Decision:
        """Enumerate + decide for one SAT compute request."""
        kwargs = {}
        if max_p_candidates is not None:
            kwargs["max_p_candidates"] = max_p_candidates
        arms = compute_arms(
            rows,
            cols,
            params,
            model=self.model,
            fused_options=fused_options,
            **kwargs,
        )
        key = self.key_for(rows, cols, dtype, params, kind=kind, mode=mode)
        with obs_runtime.span(
            "autotune_decide", key=key, kind=kind, arms=len(arms)
        ):
            return self.decide(key, arms, explore=explore)

    # -- observing -----------------------------------------------------------

    def observe(self, decision: Decision, seconds: float) -> None:
        """Feed the measured latency of an executed decision back in."""
        self.observe_arm(decision.key, decision.arm_id, seconds)

    def observe_arm(self, key: str, arm_id: str, seconds: float) -> None:
        with self._lock:
            state = self._keys.get(key)
            if state is None:
                state = self._keys[key] = KeyState()
            state.observe(arm_id, float(seconds))
            self._observations_since_save += 1
            due = (
                self.path is not None
                and self._observations_since_save >= self.autosave_every
            )
            if due:
                self._observations_since_save = 0
        obs_runtime.inc("autotune_observations_total", key=key)
        obs_runtime.observe("autotune_latency_seconds", float(seconds), key=key, arm=arm_id)
        if due:
            self.maybe_autosave()

    # -- persistence ---------------------------------------------------------

    def save(self) -> Optional[str]:
        """Write learned state to the sidecar now; returns the path."""
        if self.path is None:
            return None
        with self._lock:
            snapshot = dict(self._keys)
            sidecar.save(self.path, snapshot)
        obs_runtime.inc("autotune_sidecar_saves_total")
        return self.path

    def maybe_autosave(self) -> None:
        """Autosave, but only from the planner's creating process — forked
        batch workers share the file and must not thrash it."""
        if self.path is None or os.getpid() != self._pid:
            return
        try:
            self.save()
        except OSError:
            # Persistence is best-effort; a read-only cache dir must not
            # fail the compute that triggered the save.
            obs_runtime.inc("autotune_sidecar_saves_total", status="failed")

    # -- warm hook -----------------------------------------------------------

    def warm(
        self,
        rows: int,
        cols: int,
        dtype=np.float64,
        params: Optional[MachineParams] = None,
        *,
        engine=None,
        kind: str = "compute",
        mode: str = "fast",
        seed: int = 0,
    ) -> Decision:
        """Decide for a shape and pre-warm the chosen plan in the engine.

        The serving/batch warm path calls this before traffic arrives:
        the winning algorithm's plan (and fast-path tallies) are compiled
        via :meth:`ExecutionEngine.warm_plan`, so the first real request
        runs hot.
        """
        from ..machine.engine import default_engine
        from ..sat.registry import make_algorithm

        decision = self.decide_compute(
            rows, cols, dtype, params, kind=kind, mode=mode, explore=False
        )
        algorithm = make_algorithm(decision.algorithm, **decision.arm.algorithm_kwargs())
        run_params = params
        if run_params is None and decision.arm.width is not None:
            run_params = MachineParams(width=decision.arm.width)
        (engine or default_engine()).warm_plan(
            algorithm, rows, cols, run_params, seed=seed
        )
        return decision

    # -- reporting -----------------------------------------------------------

    def winners(self) -> Dict[str, Dict[str, object]]:
        """Current best arm per key (blended mean, no exploration bonus)."""
        out: Dict[str, Dict[str, object]] = {}
        with self._lock:
            for key, state in sorted(self._keys.items()):
                best = state.best(self.prior_weight)
                if best is None:
                    continue
                stats = state.stats.get(best)
                out[key] = {
                    "arm": best,
                    "measurements": stats.count if stats else 0,
                    "mean_seconds": stats.mean if stats else None,
                    "decisions": state.decisions,
                }
        return out

    def stats(self) -> Dict[str, object]:
        """Aggregate decision/measurement accounting for ``repro stats``."""
        with self._lock:
            modes = {"prior": 0, "exploit": 0, "explore": 0}
            decisions = 0
            measurements = 0
            for state in self._keys.values():
                decisions += state.decisions
                measurements += state.total_measurements()
                for mode_name, count in state.modes.items():
                    modes[mode_name] = modes.get(mode_name, 0) + count
            key_count = len(self._keys)
        return {
            "active": True,
            "keys": key_count,
            "decisions": decisions,
            "measurements": measurements,
            "modes": modes,
            "sidecar": {"path": self.path, "status": self.sidecar_status},
            "winners": self.winners(),
        }

    # -- timing helper -------------------------------------------------------

    @staticmethod
    def clock() -> float:
        return time.perf_counter()


# ---------------------------------------------------------------------------
# process-wide default planner (behind algorithm="auto")
# ---------------------------------------------------------------------------

_default_planner: Optional[AutotunePlanner] = None
_default_lock = threading.Lock()


def default_planner() -> AutotunePlanner:
    """The process-wide planner, created on first use (sidecar-backed)."""
    global _default_planner
    with _default_lock:
        if _default_planner is None:
            _default_planner = AutotunePlanner()
        return _default_planner


def set_default_planner(planner: Optional[AutotunePlanner]) -> Optional[AutotunePlanner]:
    """Swap the process-wide planner (tests, custom sidecar paths).

    Returns the previous planner so callers can restore it.
    """
    global _default_planner
    with _default_lock:
        previous, _default_planner = _default_planner, planner
        return previous


def autotune_stats() -> Dict[str, object]:
    """Stats of the default planner *without* creating one.

    This is what ``ExecutionEngine.stats()`` surfaces: a process that
    never used ``algorithm="auto"`` reports ``{"active": False}`` instead
    of paying for a planner (and a sidecar read) it never needed.
    """
    with _default_lock:
        planner = _default_planner
    if planner is None:
        return {"active": False}
    return planner.stats()
