"""Cost-model-guided online autotuning (``algorithm="auto"``).

The paper's Table II shows no single SAT algorithm wins at every size:
2R1W leads up to ~4K, the kR1W family takes over from ~5K, and the best
mixing parameter ``p`` shrinks as ``n`` grows. This package turns that
observation into a planner:

1. **Model prior** — candidate configurations (algorithm, kR1W ``p``,
   machine width, fused backend, serving tile) are ranked by predicted
   ``C/w + S + (B+1)l`` from the calibrated
   :mod:`repro.analysis` model (:mod:`~repro.autotune.arms`).
2. **Measured refinement** — executed decisions report their wall-clock
   back; a per-key UCB/epsilon-greedy bandit blends the measurements
   with the prior, so mispredicted configurations get probed and
   corrected online (:mod:`~repro.autotune.bandit`,
   :mod:`~repro.autotune.planner`).
3. **Persistence** — learned statistics live in a versioned,
   corruption-tolerant JSON sidecar next to the other caches
   (:mod:`~repro.autotune.sidecar`), so choices survive restarts.

Entry points: ``make_algorithm("auto")`` /
``BatchSession(algorithm="auto")`` / ``TiledSATStore`` ingest with an
auto session all route through :class:`~repro.autotune.auto.AutoSAT`;
``python -m repro autotune --sweep`` prints the live decision table
reproducing Table II's crossover; ``python -m repro stats`` surfaces the
planner via ``engine.stats()["autotune"]``.
"""

from .arms import Arm, compute_arms, serving_tile_arms
from .auto import AutoSAT
from .bandit import ArmStats, KeyState
from .planner import (
    AutotunePlanner,
    Decision,
    autotune_stats,
    default_planner,
    set_default_planner,
)
from .sidecar import ENV_VAR as SIDECAR_ENV_VAR

__all__ = [
    "Arm",
    "ArmStats",
    "AutoSAT",
    "AutotunePlanner",
    "Decision",
    "KeyState",
    "SIDECAR_ENV_VAR",
    "autotune_stats",
    "compute_arms",
    "default_planner",
    "serving_tile_arms",
    "set_default_planner",
]
