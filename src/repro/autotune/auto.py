"""``algorithm="auto"``: a SATAlgorithm that picks its implementation.

:class:`AutoSAT` is registered under the name ``"auto"`` and satisfies
the full :class:`~repro.sat.base.SATAlgorithm` contract by *delegating*:
each :meth:`compute` asks the planner for a decision, instantiates the
winning concrete algorithm through the registry, forwards every kwarg
unchanged, and feeds the measured wall-clock back into the planner. The
returned :class:`~repro.sat.base.SATResult` is the delegate's own —
``result.algorithm`` names the algorithm that actually ran, and the SAT
is bit-identical to calling that algorithm explicitly, because ``auto``
adds no compute of its own (asserted across the conformance dtypes in
the test suite).

Construction is deliberately lightweight and picklable: the default
``planner=None`` resolves to the process-wide
:func:`~repro.autotune.planner.default_planner` *at compute time*, so a
:class:`~repro.sat.batch.BatchSession` can ship ``AutoSAT`` to spawned
or forked workers — each worker lazily builds its own planner view from
the shared sidecar.
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, Optional, Sequence

import numpy as np

from ..machine.params import MachineParams
from ..sat.base import SATAlgorithm, SATResult
from .planner import AutotunePlanner, default_planner

__all__ = ["AutoSAT"]


class AutoSAT(SATAlgorithm):
    """Planner-delegating algorithm selector (registry name ``"auto"``)."""

    name = "auto"
    # Delegation handles validation: the planner only offers arms that are
    # feasible for the input's exact shape, so auto itself accepts
    # anything at least one registered algorithm accepts.
    requires_block_multiple = False
    supports_rectangular = True

    def __init__(self, planner: Optional[AutotunePlanner] = None, kind: str = "compute"):
        self._planner = planner
        self.kind = kind
        self._instances: Dict[str, SATAlgorithm] = {}

    @property
    def planner(self) -> AutotunePlanner:
        return self._planner if self._planner is not None else default_planner()

    @property
    def plan_safe(self) -> bool:
        """Never plan-compile *auto* itself — the delegate's plan (keyed
        by its own name and extras) is the cacheable object."""
        return False

    def plan_extras(self) -> Dict[str, Hashable]:
        return {"kind": self.kind}

    def _run(self, executor, rows, cols):  # pragma: no cover - unreachable
        raise NotImplementedError("AutoSAT delegates; it has no kernels of its own")

    def _delegate(self, decision) -> SATAlgorithm:
        """Concrete algorithm for a decision, cached per configuration
        (registry factories are stateless for default construction, and
        reuse mirrors how BatchSession holds one instance per pool)."""
        arm = decision.arm
        cache_key = f"{arm.algorithm}|p={arm.p}"
        instance = self._instances.get(cache_key)
        if instance is None:
            from ..sat.registry import make_algorithm

            instance = make_algorithm(arm.algorithm, **arm.algorithm_kwargs())
            self._instances[cache_key] = instance
        return instance

    def compute(
        self,
        matrix: np.ndarray,
        params: Optional[MachineParams] = None,
        *,
        executor=None,
        seed: Optional[int] = 0,
        engine=None,
        use_plan_cache: bool = True,
        fast: bool = False,
        fused=True,
        obs: Optional[bool] = None,
    ) -> SATResult:
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or 0 in matrix.shape:
            from ..errors import ShapeError

            raise ShapeError(f"matrix must be non-empty 2-D, got {matrix.shape}")
        rows, cols = matrix.shape
        planner = self.planner
        mode = "fast" if fast else "counted"
        decision = planner.decide_compute(
            rows,
            cols,
            matrix.dtype,
            params,
            kind=self.kind,
            mode=mode,
            fused_options=self._fused_options(fast, fused),
        )
        delegate = self._delegate(decision)
        run_params = params
        if run_params is None and decision.arm.width is not None:
            run_params = MachineParams(width=decision.arm.width)
        run_fused = decision.arm.fused if decision.arm.fused is not None else fused
        started = time.perf_counter()
        result = delegate.compute(
            matrix,
            run_params,
            executor=executor,
            seed=seed,
            engine=engine,
            use_plan_cache=use_plan_cache,
            fast=fast,
            fused=run_fused,
            obs=obs,
        )
        planner.observe(decision, time.perf_counter() - started)
        return result

    @staticmethod
    def _fused_options(fast: bool, fused) -> Sequence[Optional[str]]:
        """Backend arms are only in play when the caller left the fast
        path's backend to the default (``fused=True``) *and* the native
        toolchain exists; an explicit backend choice is respected."""
        if not fast or fused is not True:
            return (None,)
        from ..machine.engine.native import ensure_backend

        if ensure_backend() is None:
            return (None,)
        return ("numpy", "native")

    def __reduce__(self):
        # Ship only the picklable configuration to worker processes; an
        # explicitly-injected planner (locks, RNG) stays behind and each
        # worker resolves the process-wide default instead.
        return (AutoSAT, (None, self.kind))

    def __repr__(self) -> str:
        return f"<SATAlgorithm auto kind={self.kind!r}>"
