"""The measurement-refinement layer under the autotuner: a bandit per key.

The planner's prior is the calibrated cost model — it ranks candidate
configurations before anything has run. The bandit layer refines that
ranking with *measured* latencies, one :class:`KeyState` per
``(shape, dtype, kind, mode)`` key:

* :class:`ArmStats` — exact online mean/variance (Welford) of the
  measured seconds per arm. The update is the textbook recurrence, unit
  tested value-for-value, so the empirical layer is auditable.
* :class:`KeyState` — blends the model prior with the measurements and
  scores every arm. The prior and the measurements live in different
  units (model cost vs wall seconds), so the prior is rescaled into
  seconds through the measured/predicted ratio of the arms that *have*
  run — the same fit-one-constant trick the Table II calibration uses,
  applied online per key. Scoring is a lower-confidence-bound variant of
  UCB for minimization: arms with few measurements get an optimism
  discount proportional to ``sqrt(log(total)/count)``, so a config the
  model mispredicted still gets probed and corrected instead of being
  written off forever. An epsilon-greedy probe of the least-measured arm
  adds a guaranteed exploration floor.

Until the first measurement arrives a key is pure model: the arm with
the lowest predicted cost wins, deterministically — the property the
hypothesis suite pins down.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple

__all__ = ["ArmStats", "KeyState"]


@dataclasses.dataclass
class ArmStats:
    """Exact online statistics of one arm's measured latencies (Welford)."""

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0  # sum of squared deviations from the running mean

    def observe(self, value: float) -> None:
        """Fold one measurement in; mean and m2 stay exact at every step."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Sample variance (0.0 until two measurements exist)."""
        if self.count < 2:
            return 0.0
        return self.m2 / (self.count - 1)

    def as_list(self) -> List[float]:
        """Sidecar encoding: ``[count, mean, m2]``."""
        return [self.count, self.mean, self.m2]

    @classmethod
    def from_list(cls, raw) -> "ArmStats":
        """Inverse of :meth:`as_list`; raises on malformed input (the
        sidecar loader treats that as corruption)."""
        count, mean, m2 = raw
        count = int(count)
        mean = float(mean)
        m2 = float(m2)
        if count < 0 or not math.isfinite(mean) or not math.isfinite(m2) or m2 < 0:
            raise ValueError(f"implausible arm stats {raw!r}")
        return cls(count=count, mean=mean, m2=m2)


class KeyState:
    """Priors + measurements + decision accounting for one planner key."""

    __slots__ = ("priors", "stats", "decisions", "modes")

    def __init__(self, priors: Optional[Dict[str, float]] = None):
        #: arm_id -> predicted cost (model units; any consistent scale).
        self.priors: Dict[str, float] = dict(priors or {})
        #: arm_id -> measured-latency statistics (seconds).
        self.stats: Dict[str, ArmStats] = {}
        self.decisions = 0
        self.modes: Dict[str, int] = {"prior": 0, "exploit": 0, "explore": 0}

    # -- bookkeeping ---------------------------------------------------------

    def merge_priors(self, priors: Dict[str, float]) -> None:
        """Refresh predicted costs (arms are re-enumerated per decide)."""
        self.priors.update(priors)

    def observe(self, arm_id: str, seconds: float) -> ArmStats:
        stats = self.stats.get(arm_id)
        if stats is None:
            stats = self.stats[arm_id] = ArmStats()
        stats.observe(seconds)
        return stats

    def total_measurements(self) -> int:
        return sum(s.count for s in self.stats.values())

    # -- scoring -------------------------------------------------------------

    def scale(self) -> Optional[float]:
        """Measured-seconds per prior-unit, averaged over measured arms.

        ``None`` until something has run — the signal that scoring must
        stay in pure model units.
        """
        ratios = [
            s.mean / self.priors[arm_id]
            for arm_id, s in self.stats.items()
            if s.count > 0 and self.priors.get(arm_id, 0.0) > 0.0
        ]
        if not ratios:
            return None
        return sum(ratios) / len(ratios)

    def blended_mean(self, arm_id: str, prior_weight: float) -> float:
        """Posterior-ish latency estimate: the prior acts as
        ``prior_weight`` pseudo-measurements at its rescaled value."""
        prior = self.priors.get(arm_id, math.inf)
        scale = self.scale()
        if scale is None:
            return prior  # pure model units; consistent across arms
        stats = self.stats.get(arm_id)
        count = stats.count if stats is not None else 0
        measured_sum = stats.mean * count if stats is not None else 0.0
        return (prior_weight * prior * scale + measured_sum) / (prior_weight + count)

    def score(self, arm_id: str, prior_weight: float, ucb_c: float) -> float:
        """Lower-confidence-bound score (minimization): optimistic for
        under-measured arms so mispredictions get probed."""
        mean = self.blended_mean(arm_id, prior_weight)
        total = self.total_measurements()
        if total == 0:
            return mean
        stats = self.stats.get(arm_id)
        count = stats.count if stats is not None else 0
        bonus = ucb_c * math.sqrt(math.log(total + 1.0) / (count + prior_weight))
        return mean * max(0.0, 1.0 - bonus)

    def ranked(self, prior_weight: float, ucb_c: float) -> List[Tuple[str, float]]:
        """Every known arm with its score, best (lowest) first; ties break
        on arm id so the ranking is deterministic."""
        arm_ids = set(self.priors) | set(self.stats)
        return sorted(
            ((a, self.score(a, prior_weight, ucb_c)) for a in arm_ids),
            key=lambda pair: (pair[1], pair[0]),
        )

    def best(self, prior_weight: float) -> Optional[str]:
        """The exploit choice: lowest blended mean, no exploration bonus."""
        arm_ids = set(self.priors) | set(self.stats)
        if not arm_ids:
            return None
        return min(arm_ids, key=lambda a: (self.blended_mean(a, prior_weight), a))

    def least_measured(self) -> Optional[str]:
        """The epsilon-probe target: the arm with the fewest measurements."""
        arm_ids = set(self.priors) | set(self.stats)
        if not arm_ids:
            return None
        return min(
            arm_ids,
            key=lambda a: (self.stats[a].count if a in self.stats else 0, a),
        )

    # -- sidecar codec -------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "arms": {a: s.as_list() for a, s in self.stats.items()},
            "decisions": self.decisions,
            "modes": dict(self.modes),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "KeyState":
        """Rebuild from the sidecar; raises on malformed payloads (the
        loader treats any exception as corruption and starts fresh)."""
        state = cls()
        for arm_id, stats in dict(raw["arms"]).items():
            state.stats[str(arm_id)] = ArmStats.from_list(stats)
        state.decisions = int(raw.get("decisions", 0))
        modes = raw.get("modes", {})
        for mode in state.modes:
            state.modes[mode] = int(modes.get(mode, 0))
        return state
