"""Candidate-configuration enumeration with cost-model priors.

An :class:`Arm` is one executable configuration — an algorithm (plus
kR1W's ``p``), a machine width when the caller left it open, a fused
backend for the fast path, or a serving tile size. :func:`compute_arms`
enumerates every configuration that is *feasible* for a given input
(shape divisibility, rectangular support) and attaches the predicted
``C/w + S + (B+1)l`` milliseconds from the calibrated
:class:`~repro.analysis.model.RuntimeModel` as its prior. The planner
ranks these priors, so with no measurements ``algorithm="auto"`` is
exactly the model's Table II argmin at that size.

Shapes the model cannot score directly are approximated:

* Rectangular inputs use the equivalent-area square side (only the
  rectangular-capable algorithms are enumerated for them), rounded up to
  a width multiple where the predictor requires it.
* The serving tile arms (:func:`serving_tile_arms`) use an element-count
  proxy — per-update work grows like ``t^2`` while the per-dataset grid
  bookkeeping shrinks like ``(n/t)^2`` — because the tiled store runs on
  numpy, not the HMM executor. Measurements dominate quickly there.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.model import RuntimeModel
from ..machine.params import MachineParams
from ..sat.tuning import candidate_ps

__all__ = ["Arm", "compute_arms", "serving_tile_arms"]

#: Width candidates offered when the caller did not pin MachineParams.
DEFAULT_WIDTHS: Tuple[int, ...] = (16, 32)

#: p-grid density for the kR1W family (Table II sweeps the full grid; the
#: online planner thins it so a decision stays sub-10ms even at 18K).
DEFAULT_P_CANDIDATES = 9


@dataclasses.dataclass(frozen=True)
class Arm:
    """One executable configuration with its predicted cost."""

    arm_id: str
    prior: float  # predicted cost; any scale consistent within one key
    algorithm: Optional[str] = None
    p: Optional[float] = None
    width: Optional[int] = None
    fused: Optional[str] = None
    tile: Optional[int] = None

    def algorithm_kwargs(self) -> Dict[str, float]:
        """Constructor kwargs for :func:`repro.sat.registry.make_algorithm`."""
        return {"p": self.p} if self.p is not None else {}


def _round_up(value: int, multiple: int) -> int:
    return ((value + multiple - 1) // multiple) * multiple


def _model_for_width(model: RuntimeModel, width: int) -> RuntimeModel:
    """The calibrated model re-parameterized for a different warp width."""
    if width == model.params.width:
        return model
    return RuntimeModel(
        params=MachineParams(width=width, latency=model.params.latency),
        unit_ns=model.unit_ns,
        stride_discount=model.stride_discount,
    )


def _registry_flags():
    """(name -> (requires_block_multiple, supports_rectangular)) without
    instantiating anything at import time."""
    from ..sat.registry import _FACTORIES

    return {
        name: (factory.requires_block_multiple, factory.supports_rectangular)
        for name, factory in _FACTORIES.items()
    }


def compute_arms(
    rows: int,
    cols: int,
    params: Optional[MachineParams] = None,
    *,
    model: Optional[RuntimeModel] = None,
    widths: Optional[Sequence[int]] = None,
    max_p_candidates: int = DEFAULT_P_CANDIDATES,
    fused_options: Sequence[Optional[str]] = (None,),
) -> List[Arm]:
    """Every feasible (algorithm, p, width, fused) configuration for a
    SAT compute of shape ``rows x cols``, with model-predicted priors.

    ``params=None`` leaves the machine width open: each algorithm is
    offered at every ``widths`` candidate (default ``(16, 32)``), and the
    winning arm carries the width for the caller to pin. A pinned
    ``params`` restricts enumeration to its width. ``fused_options``
    multiplies the arms across fast-path backends; backends share the
    model prior (the model cannot distinguish them), so they separate
    purely through measurement.
    """
    if model is None:
        from ..analysis.calibration import default_model

        model = default_model()
    if params is not None:
        width_candidates: Sequence[int] = (params.width,)
    elif widths is not None:
        width_candidates = tuple(widths)
    else:
        width_candidates = DEFAULT_WIDTHS
    square = rows == cols
    n_eff = rows if square else int(math.isqrt(rows * cols))

    arms: List[Arm] = []
    flags = _registry_flags()
    for width in width_candidates:
        width_model = _model_for_width(model, width)
        multiple = rows % width == 0 and cols % width == 0
        n_model = max(width, _round_up(n_eff, width))
        for name, (needs_multiple, rectangular) in flags.items():
            if not square and not rectangular:
                continue
            if needs_multiple and not multiple:
                continue
            # 4R1W's predictor accepts any size; everything else needs a
            # width multiple, so the rounded effective size stands in.
            n_for_model = n_eff if name == "4R1W" else n_model
            prior = width_model.predict_ms(name, n_for_model)
            arms.append(
                Arm(
                    arm_id=_arm_id(name, width=width, pinned=params is not None),
                    prior=prior,
                    algorithm=name,
                    width=None if params is not None else width,
                )
            )
        if square and multiple:
            for p in candidate_ps(n_model, width, max_candidates=max_p_candidates):
                prior = width_model.predict_ms("kR1W", n_model, p=p)
                arms.append(
                    Arm(
                        arm_id=_arm_id(
                            "kR1W", width=width, pinned=params is not None, p=p
                        ),
                        prior=prior,
                        algorithm="kR1W",
                        p=p,
                        width=None if params is not None else width,
                    )
                )
    if tuple(fused_options) != (None,):
        arms = [
            dataclasses.replace(
                arm,
                arm_id=arm.arm_id + (f"+fused={fused}" if fused else ""),
                fused=fused,
            )
            for arm in arms
            for fused in fused_options
        ]
    return arms


def _arm_id(name: str, *, width: int, pinned: bool, p: Optional[float] = None) -> str:
    parts = [name]
    if p is not None:
        parts.append(f"[p={p:.6g}]")
    if not pinned:
        parts.append(f"@w{width}")
    return "".join(parts)


def serving_tile_arms(
    rows: int,
    cols: int,
    tiles: Sequence[int],
    update_weight: float = 0.5,
) -> List[Arm]:
    """Tile-size arms for the tiled serving store.

    The prior is an element-count proxy for one update plus one query:
    an update recomputes one ``t x t`` tile SAT and refreshes the
    ``(rows/t) x (cols/t)`` grid bookkeeping; a query touches a constant
    number of tiles plus ``O(t)`` boundary elements. ``update_weight``
    sets the workload mix (1.0 = update-only).
    """
    if not 0.0 <= update_weight <= 1.0:
        raise ValueError(f"update_weight must be in [0, 1], got {update_weight}")
    arms = []
    for tile in tiles:
        grid = math.ceil(rows / tile) * math.ceil(cols / tile)
        update_cost = tile * tile + grid
        query_cost = 8.0 + 2.0 * tile
        prior = update_weight * update_cost + (1.0 - update_weight) * query_cost
        arms.append(Arm(arm_id=f"tile={tile}", prior=float(prior), tile=tile))
    return arms
