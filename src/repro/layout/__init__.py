"""Data-layout substrates: diagonal arrangement, blocking, transpose.

These implement the layout machinery the paper's algorithms rely on:
Lemma 1's diagonal shared-memory arrangement (Figure 6), the ``w x w``
block decomposition every block algorithm uses, and the coalesced HMM
transpose of reference [16] (Figure 7) that 4R4W builds on.
"""

from .blocking import BlockGrid
from .diagonal import Arrangement, DiagonalArrangement, RowMajorArrangement
from .transpose import hmm_transpose, micro_block_transpose

__all__ = [
    "Arrangement",
    "BlockGrid",
    "DiagonalArrangement",
    "RowMajorArrangement",
    "hmm_transpose",
    "micro_block_transpose",
]
