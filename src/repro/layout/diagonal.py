"""Diagonal arrangement of a ``w x w`` matrix in banked shared memory.

Section III / Figure 6: storing element ``a[i][j]`` at shared-memory
location ``(i, (i + j) mod w)`` — i.e. linear address
``i * w + (i + j) mod w`` — makes *both* row-wise and column-wise warp
access conflict-free (Lemma 1):

* Row ``i`` occupies addresses ``{i*w + k : k}`` — one per bank.
* Column ``j`` element ``a[i][j]`` sits in bank ``(i + j) mod w``, which is
  distinct for each ``i`` at fixed ``j`` — again one per bank.

The naive row-major arrangement stores column ``j`` entirely in bank
``j mod w`` and thus serializes column access ``w``-fold; this module also
provides that arrangement so the ablation benchmark can contrast the two.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, ShapeError


class Arrangement:
    """Mapping between matrix coordinates and shared-memory addresses.

    Subclasses implement :meth:`address`, the linear shared-memory address
    of element ``(i, j)`` of a ``rows x w`` matrix stored with bank width
    ``w``. ``rows`` defaults to ``w`` (the square case in the paper), but
    tall layouts are supported for block staging.
    """

    name = "abstract"

    def __init__(self, width: int, rows: int = None) -> None:
        if width < 1:
            raise ConfigurationError(f"width must be positive, got {width}")
        self.width = width
        self.rows = width if rows is None else rows
        if self.rows < 1:
            raise ConfigurationError(f"rows must be positive, got {rows}")

    @property
    def size(self) -> int:
        """Words of shared memory the arrangement occupies."""
        return self.rows * self.width

    def address(self, i: int, j: int) -> int:
        raise NotImplementedError

    def _check(self, i: int, j: int) -> None:
        if not (0 <= i < self.rows and 0 <= j < self.width):
            raise ShapeError(
                f"element ({i}, {j}) outside {self.rows} x {self.width} matrix"
            )

    # --- bulk helpers -----------------------------------------------------

    def row_addresses(self, i: int) -> List[int]:
        """Addresses of row ``i`` in column order (one warp's row access)."""
        return [self.address(i, j) for j in range(self.width)]

    def column_addresses(self, j: int) -> List[int]:
        """Addresses of column ``j`` in row order (one warp's column access)."""
        return [self.address(i, j) for i in range(self.rows)]

    def conflict_degree(self, addresses: Sequence[int]) -> int:
        """Maximum number of the given addresses that share one bank."""
        if not addresses:
            return 0
        banks = np.asarray(addresses, dtype=np.int64) % self.width
        return int(np.bincount(banks, minlength=self.width).max())

    def max_row_conflict(self) -> int:
        """Worst bank-conflict degree over all row accesses."""
        return max(self.conflict_degree(self.row_addresses(i)) for i in range(self.rows))

    def max_column_conflict(self) -> int:
        """Worst bank-conflict degree over all column accesses."""
        return max(
            self.conflict_degree(self.column_addresses(j)) for j in range(self.width)
        )

    def pack(self, matrix: np.ndarray) -> np.ndarray:
        """Scatter a ``rows x width`` matrix into a linear shared-memory image."""
        matrix = np.asarray(matrix)
        if matrix.shape != (self.rows, self.width):
            raise ShapeError(
                f"expected {self.rows} x {self.width} matrix, got {matrix.shape}"
            )
        flat = np.empty(self.size, dtype=matrix.dtype)
        for i in range(self.rows):
            for j in range(self.width):
                flat[self.address(i, j)] = matrix[i, j]
        return flat

    def unpack(self, flat: np.ndarray) -> np.ndarray:
        """Gather a linear shared-memory image back into matrix form."""
        flat = np.asarray(flat)
        if flat.shape != (self.size,):
            raise ShapeError(f"expected flat image of {self.size} words, got {flat.shape}")
        out = np.empty((self.rows, self.width), dtype=flat.dtype)
        for i in range(self.rows):
            for j in range(self.width):
                out[i, j] = flat[self.address(i, j)]
        return out


class RowMajorArrangement(Arrangement):
    """Naive arrangement: ``a[i][j]`` at address ``i*w + j``.

    Row access is conflict-free; column access has the maximal conflict
    degree ``rows`` (all of column ``j`` lands in bank ``j mod w``).
    """

    name = "row-major"

    def address(self, i: int, j: int) -> int:
        self._check(i, j)
        return i * self.width + j


class DiagonalArrangement(Arrangement):
    """The paper's diagonal arrangement: ``a[i][j]`` at ``i*w + (i+j) mod w``."""

    name = "diagonal"

    def address(self, i: int, j: int) -> int:
        self._check(i, j)
        return i * self.width + (i + j) % self.width

    def coordinates(self, address: int) -> Tuple[int, int]:
        """Inverse mapping: the ``(i, j)`` stored at ``address``."""
        if not 0 <= address < self.size:
            raise ShapeError(f"address {address} outside image of {self.size} words")
        i, slot = divmod(address, self.width)
        return i, (slot - i) % self.width
