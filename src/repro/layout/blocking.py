"""Block decomposition of an ``n x n`` matrix into ``w x w`` tiles.

Every block-based algorithm in the paper (2R1W, 1R1W, kR1W, the HMM
transpose) partitions the input into ``(n/w) x (n/w)`` blocks of ``w x w``
elements; block ``(I, J)`` covers rows ``I*w .. (I+1)*w - 1`` and columns
``J*w .. (J+1)*w - 1``. This module centralizes that coordinate math plus
the diagonal-stage enumeration used by 1R1W (all blocks with
``I + J == stage``) and the triangle partition used by kR1W (Figure 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..errors import ShapeError


@dataclass(frozen=True)
class BlockGrid:
    """A grid of ``w x w`` blocks covering an ``n x n_cols`` matrix.

    Square by default (``n_cols = n``, the paper's setting); a rectangular
    grid supports the extensions that generalize 2R2W/4R1W/1R1W to
    non-square inputs. The kR1W triangle partition remains square-only.
    """

    n: int
    w: int
    n_cols: int = None

    def __post_init__(self) -> None:
        if self.n_cols is None:
            object.__setattr__(self, "n_cols", self.n)
        if self.n < 1 or self.n_cols < 1 or self.w < 1:
            raise ShapeError(
                f"sizes must be positive, got n={self.n}, n_cols={self.n_cols}, w={self.w}"
            )
        if self.n % self.w != 0 or self.n_cols % self.w != 0:
            raise ShapeError(
                f"matrix shape ({self.n}, {self.n_cols}) must be a multiple of "
                f"block width w={self.w}; pad the input "
                "(repro.util.matrices.pad_to_multiple) first"
            )

    @property
    def is_square(self) -> bool:
        return self.n == self.n_cols

    @property
    def block_rows(self) -> int:
        return self.n // self.w

    @property
    def block_cols(self) -> int:
        return self.n_cols // self.w

    @property
    def blocks_per_side(self) -> int:
        """Square-only alias matching the paper's ``m = n/w``."""
        if not self.is_square:
            raise ShapeError("blocks_per_side is defined for square grids only")
        return self.n // self.w

    @property
    def num_blocks(self) -> int:
        return self.block_rows * self.block_cols

    def origin(self, block_row: int, block_col: int) -> Tuple[int, int]:
        """Top-left element coordinate of block ``(block_row, block_col)``."""
        if not (0 <= block_row < self.block_rows and 0 <= block_col < self.block_cols):
            raise ShapeError(
                f"block ({block_row}, {block_col}) outside "
                f"{self.block_rows} x {self.block_cols} grid"
            )
        return block_row * self.w, block_col * self.w

    def all_blocks(self) -> Iterator[Tuple[int, int]]:
        """All block coordinates in row-major order."""
        for i in range(self.block_rows):
            for j in range(self.block_cols):
                yield i, j

    def diagonal(self, stage: int) -> List[Tuple[int, int]]:
        """Blocks on anti-diagonal ``stage`` (``I + J == stage``), as 1R1W visits them.

        Stages run from 0 to ``block_rows + block_cols - 2``.
        """
        last = self.block_rows + self.block_cols - 2
        if not 0 <= stage <= last:
            raise ShapeError(f"stage {stage} outside [0, {last}]")
        lo = max(0, stage - (self.block_cols - 1))
        hi = min(stage, self.block_rows - 1)
        return [(i, stage - i) for i in range(lo, hi + 1)]

    @property
    def num_diagonals(self) -> int:
        """Number of 1R1W stages: ``block_rows + block_cols - 1``."""
        return self.block_rows + self.block_cols - 1

    def triangle_partition(
        self, p: float
    ) -> Tuple[List[Tuple[int, int]], List[Tuple[int, int]], List[Tuple[int, int]]]:
        """Figure 12's kR1W partition for mixing parameter ``p`` in ``[0, 1]``.

        Returns ``(top_left, middle, bottom_right)`` where the top-left
        triangle contains blocks with ``I + J < t``, the bottom-right
        triangle blocks with ``I + J > 2(m-1) - t``, and the middle band
        the rest, with ``t = round(p * (m - 1))`` diagonals assigned to
        each triangle. ``p = 0`` sends everything to the middle (pure
        1R1W); ``p = 1`` sends everything to the triangles (pure 2R1W on
        two halves).
        """
        if not 0.0 <= p <= 1.0:
            raise ShapeError(f"p must be in [0, 1], got {p}")
        m = self.blocks_per_side  # raises on rectangular grids (kR1W is square-only)
        t = int(round(p * (m - 1)))
        top, mid, bot = [], [], []
        for i, j in self.all_blocks():
            s = i + j
            if s < t:
                top.append((i, j))
            elif s > 2 * (m - 1) - t:
                bot.append((i, j))
            else:
                mid.append((i, j))
        return top, mid, bot
