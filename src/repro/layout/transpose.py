"""Matrix transpose on the HMM (reference [16], used by 4R4W; Figure 7).

Transposing an ``n x n`` matrix in global memory costs only coalesced
traffic: partition into ``w x w`` blocks, and for each block pair
``(I, J) / (J, I)`` have one DMM read block ``(I, J)`` row-wise (coalesced),
transpose it inside shared memory, and write it row-wise (coalesced) at the
transposed position. The in-shared transpose is conflict-free thanks to the
diagonal arrangement (Lemma 1): write the incoming rows row-wise, then read
the stored matrix column-wise — both touch each bank exactly once per warp
(Figure 7).

Two implementations are provided:

* :func:`micro_block_transpose` drives a cycle-exact
  :class:`~repro.machine.micro.SharedMatrix` warp by warp, proving the
  conflict-free claim and reproducing Figure 7;
* :func:`hmm_transpose` runs at scale on the macro executor as a single
  kernel of block tasks (``2 n^2`` coalesced accesses, no barrier).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ShapeError
from ..machine.engine.fused import TransposeSpec, attach_fused_spec
from ..machine.macro.executor import BlockContext, HMMExecutor
from ..machine.params import MachineParams
from .blocking import BlockGrid
from .diagonal import DiagonalArrangement


def micro_block_transpose(
    block: np.ndarray, params: MachineParams
) -> Tuple[np.ndarray, int, int]:
    """Transpose one ``w x w`` block through diagonally-arranged shared memory.

    Returns ``(transposed, write_conflict_degree, read_conflict_degree)``
    where the conflict degrees are the worst bank-conflict degree observed
    across all warp rounds — both are 1 (conflict-free) for the diagonal
    arrangement, which is the content of Figure 7 / Lemma 1.
    """
    # Imported here to break the layout <-> machine.micro import cycle
    # (micro shared memory uses layout arrangements).
    from ..machine.micro.shared_memory import SharedMatrix

    w = params.width
    block = np.asarray(block)
    if block.shape != (w, w):
        raise ShapeError(f"expected a {w} x {w} block, got {block.shape}")
    shared = SharedMatrix(params, DiagonalArrangement(w))
    # Phase 1: one warp writes each incoming row, row-wise.
    for i in range(w):
        shared.write_row(i, block[i])
    write_conflict = max(max(r.stages_per_warp) for r in shared.dmm.rounds)
    first_phase_rounds = len(shared.dmm.rounds)
    # Phase 2: one warp reads each column; column j becomes output row j.
    out = np.empty_like(block)
    for j in range(w):
        out[j] = shared.read_column(j)
    read_conflict = max(
        max(r.stages_per_warp) for r in shared.dmm.rounds[first_phase_rounds:]
    )
    return out, write_conflict, read_conflict


def _transpose_block_task(
    ctx: BlockContext,
    src: str,
    dst: str,
    src_origin: Tuple[int, int],
    dst_origin: Tuple[int, int],
) -> None:
    """One DMM transposes one block from ``src`` into ``dst``."""
    w = ctx.params.width
    tile = ctx.shared.alloc((w, w))
    tile.fill(ctx.gm.read_block(src, src_origin[0], src_origin[1], w, w))
    # In-shared transpose: conflict-free under the diagonal arrangement
    # (micro_block_transpose proves this); charge the column-wise re-read.
    transposed = tile.data.T.copy()
    tile.charge(reads=w * w)
    ctx.gm.write_block(dst, dst_origin[0], dst_origin[1], transposed)


def hmm_transpose(
    executor: HMMExecutor, src: str, dst: str, label: str = "transpose"
) -> None:
    """Transpose buffer ``src`` into buffer ``dst`` in one kernel.

    ``dst`` is allocated if absent (with the transposed shape — rectangular
    sources are supported, an extension over the paper's square setting).
    Performs ``2 r c`` coalesced element accesses and no barrier (beyond
    the kernel boundary itself), matching reference [16]'s offline
    permutation bound.
    """
    shape = executor.gm.shape(src)
    if len(shape) != 2:
        raise ShapeError(f"hmm_transpose requires a 2-D buffer, got {shape}")
    rows, cols = shape
    w = executor.params.width
    grid = BlockGrid(rows, w, cols)
    if not executor.gm.has(dst):
        executor.gm.alloc(dst, (cols, rows), dtype=executor.gm.dtype(src))
    elif executor.gm.shape(dst) != (cols, rows):
        raise ShapeError(
            f"destination {dst!r} has shape {executor.gm.shape(dst)}, "
            f"need {(cols, rows)}"
        )

    tasks = []
    for bi, bj in grid.all_blocks():
        src_origin = grid.origin(bi, bj)
        dst_origin = (bj * w, bi * w)

        def task(ctx, s=src_origin, d=dst_origin):
            _transpose_block_task(ctx, src, dst, s, d)

        tasks.append(task)
    attach_fused_spec(tasks, TransposeSpec(src, dst))
    executor.run_kernel(tasks, label=label)
