"""Haar-like rectangle features over the integral image (Viola-Jones style).

Each feature is a signed combination of adjacent rectangle sums — two-,
three-, or four-rectangle patterns — and evaluates in a handful of SAT
lookups. Feature evaluation is the canonical high-query-volume workload
that justifies paying for a fast SAT construction.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ShapeError
from ..sat.reference import rectangle_sums

#: (kind, how the (h, w) window splits into signed sub-rectangles)
HAAR_KINDS = ("edge-h", "edge-v", "line-h", "line-v", "checker")


@dataclasses.dataclass(frozen=True)
class HaarFeature:
    """A Haar-like feature anchored at ``(row, col)`` with a window of
    ``height x width`` pixels, of one of the five classic kinds."""

    kind: str
    row: int
    col: int
    height: int
    width: int

    def __post_init__(self) -> None:
        if self.kind not in HAAR_KINDS:
            raise ShapeError(f"kind must be one of {HAAR_KINDS}, got {self.kind!r}")
        if self.height < 2 or self.width < 2:
            raise ShapeError("feature window must be at least 2 x 2")
        if self.kind in ("edge-h", "line-h") and self.width % _parts(self.kind) != 0:
            raise ShapeError(f"{self.kind} needs width divisible by {_parts(self.kind)}")
        if self.kind in ("edge-v", "line-v") and self.height % _parts(self.kind) != 0:
            raise ShapeError(f"{self.kind} needs height divisible by {_parts(self.kind)}")
        if self.kind == "checker" and (self.height % 2 or self.width % 2):
            raise ShapeError("checker needs even height and width")

    def rectangles(self) -> List[Tuple[int, Tuple[int, int, int, int]]]:
        """Signed inclusive rectangles ``(sign, (top, left, bottom, right))``."""
        r, c, h, w = self.row, self.col, self.height, self.width
        if self.kind == "edge-h":  # left half minus right half
            half = w // 2
            return [
                (+1, (r, c, r + h - 1, c + half - 1)),
                (-1, (r, c + half, r + h - 1, c + w - 1)),
            ]
        if self.kind == "edge-v":  # top half minus bottom half
            half = h // 2
            return [
                (+1, (r, c, r + half - 1, c + w - 1)),
                (-1, (r + half, c, r + h - 1, c + w - 1)),
            ]
        if self.kind == "line-h":  # outer thirds minus middle third
            third = w // 3
            return [
                (+1, (r, c, r + h - 1, c + third - 1)),
                (-2, (r, c + third, r + h - 1, c + 2 * third - 1)),
                (+1, (r, c + 2 * third, r + h - 1, c + w - 1)),
            ]
        if self.kind == "line-v":
            third = h // 3
            return [
                (+1, (r, c, r + third - 1, c + w - 1)),
                (-2, (r + third, c, r + 2 * third - 1, c + w - 1)),
                (+1, (r + 2 * third, c, r + h - 1, c + w - 1)),
            ]
        # checker: diagonal quadrants minus anti-diagonal quadrants
        hh, hw = h // 2, w // 2
        return [
            (+1, (r, c, r + hh - 1, c + hw - 1)),
            (-1, (r, c + hw, r + hh - 1, c + w - 1)),
            (-1, (r + hh, c, r + h - 1, c + hw - 1)),
            (+1, (r + hh, c + hw, r + h - 1, c + w - 1)),
        ]


def _parts(kind: str) -> int:
    return 2 if kind.startswith("edge") else 3


def evaluate_features(sat: np.ndarray, features: Sequence[HaarFeature]) -> np.ndarray:
    """Evaluate many features against a prebuilt SAT, vectorized.

    Gathers every signed rectangle across all features into one
    :func:`rectangle_sums` call and reduces per feature.
    """
    if not features:
        return np.zeros(0)
    rects: List[Tuple[int, int, int, int]] = []
    signs: List[int] = []
    owner: List[int] = []
    for idx, f in enumerate(features):
        for sign, rect in f.rectangles():
            rects.append(rect)
            signs.append(sign)
            owner.append(idx)
    sums = rectangle_sums(sat, np.asarray(rects))
    out = np.zeros(len(features))
    np.add.at(out, np.asarray(owner), np.asarray(signs) * sums)
    return out


def dense_feature_grid(
    image_shape: Tuple[int, int],
    kind: str,
    height: int,
    width: int,
    stride: int = 1,
) -> List[HaarFeature]:
    """All features of one kind/size placed on a regular grid."""
    h_img, w_img = image_shape
    feats = []
    for r in range(0, h_img - height + 1, stride):
        for c in range(0, w_img - width + 1, stride):
            feats.append(HaarFeature(kind, r, c, height, width))
    return feats
