"""Summed-area variance shadow maps (Lauritzen, GPU Gems 3 — the paper's ref [12]).

A variance shadow map stores per-texel depth and squared depth; filtering
a receiver's footprint needs the *mean and variance of depth over an
arbitrary rectangle*, which two SATs provide in O(1). Chebyshev's
inequality then upper-bounds the fraction of the footprint that occludes
the receiver:

    p_max = sigma^2 / (sigma^2 + (t - mu)^2)      for t > mu, else 1

This module implements the full pipeline on synthetic scenes: build the
two SATs (optionally on the simulated HMM), query footprints, and shade.
It exists to exercise the SAT library on the workload the paper's
introduction cites, not to be a renderer.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from ..errors import ShapeError
from ..sat.reference import rectangle_sums, sat_reference


@dataclasses.dataclass
class VarianceShadowMap:
    """Prefiltered shadow map supporting rectangle-footprint queries."""

    depth_sat: np.ndarray
    depth_sq_sat: np.ndarray
    shape: Tuple[int, int]

    @classmethod
    def from_depth(cls, depth: np.ndarray) -> "VarianceShadowMap":
        depth = np.asarray(depth, dtype=np.float64)
        if depth.ndim != 2:
            raise ShapeError(f"depth map must be 2-D, got ndim={depth.ndim}")
        return cls(
            depth_sat=sat_reference(depth),
            depth_sq_sat=sat_reference(depth * depth),
            shape=depth.shape,
        )

    def moments(self, rects: np.ndarray):
        """Footprint mean and variance of depth for ``(k, 4)`` rectangles."""
        rects = np.asarray(rects, dtype=np.int64)
        top, left, bottom, right = rects.T
        areas = ((bottom - top + 1) * (right - left + 1)).astype(np.float64)
        mean = rectangle_sums(self.depth_sat, rects) / areas
        mean_sq = rectangle_sums(self.depth_sq_sat, rects) / areas
        var = np.maximum(mean_sq - mean * mean, 0.0)
        return mean, var

    def visibility(
        self, rects: np.ndarray, receiver_depth: np.ndarray, min_variance: float = 1e-6
    ) -> np.ndarray:
        """Chebyshev upper bound on light visibility per footprint.

        ``receiver_depth`` is the depth of the shaded point; footprints
        whose mean occluder depth is at or beyond the receiver are fully
        lit (bound 1).
        """
        receiver_depth = np.asarray(receiver_depth, dtype=np.float64)
        mean, var = self.moments(rects)
        var = np.maximum(var, min_variance)
        d = receiver_depth - mean
        p_max = var / (var + d * d)
        return np.where(d <= 0, 1.0, p_max)


def synthetic_scene(
    n: int, *, n_occluders: int = 6, seed: int = 3
) -> Tuple[np.ndarray, np.ndarray]:
    """A depth map with floating rectangular occluders over a ground plane.

    Returns ``(depth_map, receiver_depth)`` where the receiver plane sits
    at depth 1.0 and occluders float at depths in (0.2, 0.8).
    """
    rng = np.random.default_rng(seed)
    depth = np.full((n, n), 1.0)
    for _ in range(n_occluders):
        h, w = rng.integers(n // 8 + 1, n // 3 + 1, size=2)
        r0 = rng.integers(0, n - h + 1)
        c0 = rng.integers(0, n - w + 1)
        z = rng.uniform(0.2, 0.8)
        depth[r0 : r0 + h, c0 : c0 + w] = np.minimum(depth[r0 : r0 + h, c0 : c0 + w], z)
    receiver = np.full((n, n), 1.0)
    return depth, receiver


def shade(
    vsm: VarianceShadowMap,
    receiver_depth: np.ndarray,
    filter_radius: int,
) -> np.ndarray:
    """Per-pixel soft-shadow factor with a clamped square filter footprint."""
    h, w = vsm.shape
    if receiver_depth.shape != (h, w):
        raise ShapeError("receiver depth must match the shadow map shape")
    rows, cols = np.mgrid[0:h, 0:w]
    top = np.clip(rows - filter_radius, 0, h - 1).ravel()
    bottom = np.clip(rows + filter_radius, 0, h - 1).ravel()
    left = np.clip(cols - filter_radius, 0, w - 1).ravel()
    right = np.clip(cols + filter_radius, 0, w - 1).ravel()
    rects = np.stack([top, left, bottom, right], axis=1)
    vis = vsm.visibility(rects, receiver_depth.ravel() - 1e-3)
    return vis.reshape(h, w)
