"""Integral-image facade: SAT construction plus O(1) region queries.

This is the user-facing entry point the paper's introduction motivates:
build the SAT once (on the simulated asynchronous HMM or directly on the
CPU), then answer arbitrarily many rectangle-sum / mean / count queries in
four lookups each.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ShapeError
from ..machine.params import MachineParams
from ..sat.base import SATResult
from ..sat.reference import rectangle_sum, rectangle_sums, sat_reference
from ..sat.registry import make_algorithm
from ..util.matrices import pad_to_multiple


class IntegralImage:
    """A summed area table with rectangle-query methods.

    Parameters
    ----------
    image:
        2-D array (any shape — non-multiples of the machine width are
        zero-padded internally and cropped on output).
    algorithm:
        A Table II algorithm name, or ``"cpu"`` for the direct numpy
        construction (the default — instant, exact).
    params:
        Machine configuration when simulating on the HMM.
    """

    def __init__(
        self,
        image: np.ndarray,
        *,
        algorithm: str = "cpu",
        params: Optional[MachineParams] = None,
        **algo_kwargs,
    ) -> None:
        image = np.asarray(image, dtype=np.float64)
        if image.ndim != 2:
            raise ShapeError(f"image must be 2-D, got ndim={image.ndim}")
        self.shape: Tuple[int, int] = image.shape
        self.algorithm = algorithm
        self.result: Optional[SATResult] = None
        if algorithm == "cpu":
            self.sat = sat_reference(image)
        else:
            params = params or MachineParams()
            side = max(image.shape)
            padded = pad_to_multiple(
                np.pad(
                    image,
                    ((0, side - image.shape[0]), (0, side - image.shape[1])),
                ),
                params.width,
            )
            algo = make_algorithm(algorithm, **algo_kwargs)
            self.result = algo.compute(padded, params)
            self.sat = self.result.sat[: image.shape[0], : image.shape[1]]

    # --- queries -------------------------------------------------------------

    def region_sum(self, top: int, left: int, bottom: int, right: int) -> float:
        """Sum over the inclusive rectangle ``[top..bottom] x [left..right]``."""
        return float(rectangle_sum(self.sat, top, left, bottom, right))

    def region_sums(self, rects: np.ndarray) -> np.ndarray:
        """Vectorized sums for ``(k, 4)`` rectangles ``(top, left, bottom, right)``."""
        return rectangle_sums(self.sat, rects)

    def region_mean(self, top: int, left: int, bottom: int, right: int) -> float:
        """Mean over the inclusive rectangle."""
        area = (bottom - top + 1) * (right - left + 1)
        return self.region_sum(top, left, bottom, right) / area

    def total(self) -> float:
        """Sum of the whole image (the SAT's bottom-right corner)."""
        return float(self.sat[-1, -1])
