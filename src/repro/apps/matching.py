"""Template matching with SAT-backed local statistics (paper ref. [3]).

Normalized cross-correlation (NCC) between an image and a template needs,
at every candidate position, the window's mean and energy — exactly the
rectangle sums a SAT provides in O(1). The correlation numerator itself is
computed by direct sliding dot product (FFT would be the production
choice; the SAT is what this package is about), so the overall cost is
O(n^2 · t^2) numerator + O(n^2) SAT-backed normalization instead of
O(n^2 · t^2) *per statistic*.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import ShapeError
from ..sat.reference import sat_reference


def _window_sums_valid(image: np.ndarray, th: int, tw: int) -> np.ndarray:
    """Sum of every ``th x tw`` window (valid positions only), via one SAT."""
    h, w = image.shape
    ps = np.zeros((h + 1, w + 1))
    ps[1:, 1:] = sat_reference(image)
    return (
        ps[th : h + 1, tw : w + 1]
        - ps[0 : h - th + 1, tw : w + 1]
        - ps[th : h + 1, 0 : w - tw + 1]
        + ps[0 : h - th + 1, 0 : w - tw + 1]
    )


def match_template(image: np.ndarray, template: np.ndarray) -> np.ndarray:
    """Normalized cross-correlation map over all valid positions.

    Returns an ``(H - th + 1) x (W - tw + 1)`` array of NCC scores in
    ``[-1, 1]``. Windows with (numerically) zero variance score 0.
    """
    image = np.asarray(image, dtype=np.float64)
    template = np.asarray(template, dtype=np.float64)
    if image.ndim != 2 or template.ndim != 2:
        raise ShapeError("image and template must be 2-D")
    th, tw = template.shape
    if th > image.shape[0] or tw > image.shape[1]:
        raise ShapeError(
            f"template {template.shape} larger than image {image.shape}"
        )
    area = th * tw
    t_centered = template - template.mean()
    t_norm = float(np.sqrt((t_centered**2).sum()))

    # SAT-backed window statistics: O(1) per position after two SATs.
    win_sum = _window_sums_valid(image, th, tw)
    win_sumsq = _window_sums_valid(image * image, th, tw)
    win_var_total = np.maximum(win_sumsq - win_sum**2 / area, 0.0)
    win_norm = np.sqrt(win_var_total)

    # Numerator: correlation with the centered template (direct form).
    out_h, out_w = win_sum.shape
    numer = np.zeros((out_h, out_w))
    for r in range(th):
        for c in range(tw):
            coeff = t_centered[r, c]
            if coeff != 0.0:
                numer += coeff * image[r : r + out_h, c : c + out_w]

    denom = win_norm * t_norm
    with np.errstate(invalid="ignore", divide="ignore"):
        ncc = np.where(denom > 1e-12, numer / denom, 0.0)
    return np.clip(ncc, -1.0, 1.0)


def find_matches(
    image: np.ndarray,
    template: np.ndarray,
    threshold: float = 0.9,
    max_matches: int = 16,
) -> List[Tuple[int, int, float]]:
    """Greedy non-overlapping peak extraction from the NCC map.

    Returns up to ``max_matches`` triples ``(row, col, score)`` sorted by
    score, suppressing any later peak whose window overlaps an accepted one.
    """
    ncc = match_template(image, template)
    th, tw = template.shape
    order = np.argsort(ncc, axis=None)[::-1]
    accepted: List[Tuple[int, int, float]] = []
    for flat in order:
        r, c = np.unravel_index(flat, ncc.shape)
        score = float(ncc[r, c])
        if score < threshold or len(accepted) >= max_matches:
            break
        if any(abs(r - ar) < th and abs(c - ac) < tw for ar, ac, _ in accepted):
            continue
        accepted.append((int(r), int(c), score))
    return accepted
