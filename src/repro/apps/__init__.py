"""Applications built on the SAT: the workloads the paper's intro motivates.

* :class:`IntegralImage` — build once, O(1) rectangle queries;
* :mod:`repro.apps.filters` — box blur, local mean/variance, adaptive
  thresholding;
* :mod:`repro.apps.features` — Haar-like rectangle features (Viola-Jones);
* :mod:`repro.apps.shadows` — summed-area variance shadow maps
  (the paper's reference [12]).
"""

from .features import HAAR_KINDS, HaarFeature, dense_feature_grid, evaluate_features
from .matching import find_matches, match_template
from .filters import (
    adaptive_threshold,
    box_filter,
    box_sum,
    clamped_window_bounds,
    local_mean_variance,
    padded_sat,
)
from .integral_image import IntegralImage
from .shadows import VarianceShadowMap, shade, synthetic_scene

__all__ = [
    "HAAR_KINDS",
    "HaarFeature",
    "IntegralImage",
    "VarianceShadowMap",
    "adaptive_threshold",
    "box_filter",
    "box_sum",
    "clamped_window_bounds",
    "dense_feature_grid",
    "evaluate_features",
    "find_matches",
    "match_template",
    "local_mean_variance",
    "padded_sat",
    "shade",
    "synthetic_scene",
]
