"""SAT-based image filters: box blur and local statistics.

A ``(2r+1) x (2r+1)`` box filter over an ``n x n`` image is ``O(n^2)``
via the SAT regardless of the radius — the classic argument for computing
SATs fast. Local variance (mean of squares minus square of mean, via two
SATs) is the core of adaptive thresholding and of variance shadow maps.
All filters use clamped (truncated-at-border) windows so the window area
is exact near edges.

Every filter accepts an optional precomputed SAT (``sat=`` — either the
plain SAT of the image, shape ``(h, w)``, or the zero-guarded padded
form, shape ``(h+1, w+1)``), so repeated filters over one image — and the
serving layer's :mod:`repro.service.queries`, which keeps tiled SATs
resident — stop paying an ``O(n^2)`` recompute per call. Without it, the
SAT is built fresh via :func:`~repro.sat.reference.sat_reference` as
before.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ShapeError
from ..sat.reference import sat_reference


def padded_sat(image: np.ndarray, sat: Optional[np.ndarray] = None) -> np.ndarray:
    """SAT with a zero guard row/column so index -1 is addressable.

    ``sat``, if given, is used instead of recomputing: either the plain
    SAT (same shape as ``image``) or an already-padded SAT (one row and
    column larger), which is returned as-is.
    """
    h, w = image.shape
    if sat is not None:
        sat = np.asarray(sat)
        if sat.shape == (h + 1, w + 1):
            return sat
        if sat.shape != (h, w):
            raise ShapeError(
                f"precomputed SAT shape {sat.shape} matches neither the image "
                f"shape {(h, w)} nor its padded form {(h + 1, w + 1)}"
            )
    else:
        sat = sat_reference(image)
    out = np.zeros((h + 1, w + 1), dtype=sat.dtype)
    out[1:, 1:] = sat
    return out


def clamped_window_bounds(
    shape: Tuple[int, int], rows: np.ndarray, cols: np.ndarray, radius: int
):
    """Inclusive clamped-window bounds ``(top, bottom, left, right)``.

    The window of ``radius`` around each ``(rows[k], cols[k])`` is
    truncated at the image border, the convention every filter here (and
    the serving layer's local-stats queries) shares so window areas stay
    exact near edges.
    """
    if radius < 0:
        raise ShapeError(f"radius must be >= 0, got {radius}")
    h, w = shape
    rows = np.asarray(rows)
    cols = np.asarray(cols)
    top = np.clip(rows - radius, 0, h - 1)
    bottom = np.clip(rows + radius, 0, h - 1)
    left = np.clip(cols - radius, 0, w - 1)
    right = np.clip(cols + radius, 0, w - 1)
    return top, bottom, left, right


def _window_sums(image: np.ndarray, radius: int,
                 sat: Optional[np.ndarray] = None):
    """Per-pixel clamped-window sums and window areas via one SAT."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ShapeError(f"image must be 2-D, got ndim={image.ndim}")
    h, w = image.shape
    ps = padded_sat(image, sat)
    top, bottom, left, right = clamped_window_bounds(
        (h, w), np.arange(h), np.arange(w), radius
    )
    t = top[:, None]
    b = bottom[:, None]
    lf = left[None, :]
    r = right[None, :]
    sums = ps[b + 1, r + 1] - ps[t, r + 1] - ps[b + 1, lf] + ps[t, lf]
    areas = (b - t + 1) * (r - lf + 1)
    return sums, areas.astype(np.float64)


def box_filter(image: np.ndarray, radius: int, *,
               sat: Optional[np.ndarray] = None) -> np.ndarray:
    """Mean filter with a ``(2 radius + 1)``-square clamped window."""
    sums, areas = _window_sums(image, radius, sat)
    return sums / areas


def box_sum(image: np.ndarray, radius: int, *,
            sat: Optional[np.ndarray] = None) -> np.ndarray:
    """Windowed sums (unnormalized box filter)."""
    return _window_sums(image, radius, sat)[0]


def local_mean_variance(image: np.ndarray, radius: int, *,
                        sat: Optional[np.ndarray] = None,
                        sat_sq: Optional[np.ndarray] = None):
    """Per-pixel windowed mean and variance from two SATs.

    ``var = E[x^2] - E[x]^2``, clipped at zero against rounding.
    ``sat`` / ``sat_sq`` are optional precomputed SATs of the image and
    of its elementwise square; passing both makes repeated calls (and
    the two internal passes) share the same tables instead of building
    two fresh padded SATs per call.
    """
    image = np.asarray(image, dtype=np.float64)
    mean = box_filter(image, radius, sat=sat)
    mean_sq = box_filter(image * image, radius, sat=sat_sq)
    var = np.maximum(mean_sq - mean * mean, 0.0)
    return mean, var


def adaptive_threshold(image: np.ndarray, radius: int, offset: float = 0.0, *,
                       sat: Optional[np.ndarray] = None) -> np.ndarray:
    """Binary mask of pixels brighter than their local mean plus ``offset``.

    Bradley-style adaptive thresholding with the local mean supplied by
    the SAT-backed box filter; positive ``offset`` suppresses flat regions.
    """
    mean = box_filter(image, radius, sat=sat)
    return np.asarray(image, dtype=np.float64) > (mean + offset)
