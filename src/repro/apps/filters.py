"""SAT-based image filters: box blur and local statistics.

A ``(2r+1) x (2r+1)`` box filter over an ``n x n`` image is ``O(n^2)``
via the SAT regardless of the radius — the classic argument for computing
SATs fast. Local variance (mean of squares minus square of mean, via two
SATs) is the core of adaptive thresholding and of variance shadow maps.
All filters use clamped (truncated-at-border) windows so the window area
is exact near edges.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..sat.reference import sat_reference


def _padded_sat(image: np.ndarray) -> np.ndarray:
    """SAT with a zero guard row/column so index -1 is addressable."""
    sat = sat_reference(image)
    out = np.zeros((sat.shape[0] + 1, sat.shape[1] + 1), dtype=sat.dtype)
    out[1:, 1:] = sat
    return out


def _window_sums(image: np.ndarray, radius: int):
    """Per-pixel clamped-window sums and window areas via one SAT."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ShapeError(f"image must be 2-D, got ndim={image.ndim}")
    if radius < 0:
        raise ShapeError(f"radius must be >= 0, got {radius}")
    h, w = image.shape
    ps = _padded_sat(image)
    rows = np.arange(h)
    cols = np.arange(w)
    top = np.clip(rows - radius, 0, h - 1)
    bottom = np.clip(rows + radius, 0, h - 1)
    left = np.clip(cols - radius, 0, w - 1)
    right = np.clip(cols + radius, 0, w - 1)
    t = top[:, None]
    b = bottom[:, None]
    lf = left[None, :]
    r = right[None, :]
    sums = ps[b + 1, r + 1] - ps[t, r + 1] - ps[b + 1, lf] + ps[t, lf]
    areas = (b - t + 1) * (r - lf + 1)
    return sums, areas.astype(np.float64)


def box_filter(image: np.ndarray, radius: int) -> np.ndarray:
    """Mean filter with a ``(2 radius + 1)``-square clamped window."""
    sums, areas = _window_sums(image, radius)
    return sums / areas


def box_sum(image: np.ndarray, radius: int) -> np.ndarray:
    """Windowed sums (unnormalized box filter)."""
    return _window_sums(image, radius)[0]


def local_mean_variance(image: np.ndarray, radius: int):
    """Per-pixel windowed mean and variance from two SATs.

    ``var = E[x^2] - E[x]^2``, clipped at zero against rounding.
    """
    image = np.asarray(image, dtype=np.float64)
    mean = box_filter(image, radius)
    mean_sq = box_filter(image * image, radius)
    var = np.maximum(mean_sq - mean * mean, 0.0)
    return mean, var


def adaptive_threshold(image: np.ndarray, radius: int, offset: float = 0.0) -> np.ndarray:
    """Binary mask of pixels brighter than their local mean plus ``offset``.

    Bradley-style adaptive thresholding with the local mean supplied by
    the SAT-backed box filter; positive ``offset`` suppresses flat regions.
    """
    mean = box_filter(image, radius)
    return np.asarray(image, dtype=np.float64) > (mean + offset)
