"""Shared utilities: validation, matrix generators, table formatting."""

from .backoff import Clock, ExponentialBackoff, FakeClock, SystemClock
from .formatting import format_matrix, format_table, write_result
from .matrices import (
    FIGURE3_INPUT,
    FIGURE3_TOTAL,
    gradient_matrix,
    ones_matrix,
    pad_to_multiple,
    random_int_matrix,
    random_matrix,
    synthetic_image,
)
from .validation import as_square_matrix, require_finite, require_multiple

__all__ = [
    "FIGURE3_INPUT",
    "FIGURE3_TOTAL",
    "Clock",
    "ExponentialBackoff",
    "FakeClock",
    "SystemClock",
    "as_square_matrix",
    "format_matrix",
    "format_table",
    "gradient_matrix",
    "ones_matrix",
    "pad_to_multiple",
    "random_int_matrix",
    "random_matrix",
    "require_finite",
    "require_multiple",
    "synthetic_image",
    "write_result",
]
