"""Plain-text table rendering for benchmark reproductions.

The benchmark harness prints the same rows the paper reports; this module
renders them as aligned monospace tables and writes them under
``results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: Optional[str] = None,
    float_fmt: str = "{:.3g}",
) -> str:
    """Render rows as an aligned monospace table."""

    def cell(v: object) -> str:
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    str_rows: List[List[str]] = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def write_result(name: str, text: str, results_dir: Optional[str] = None) -> str:
    """Persist a reproduction table under ``results/`` and return its path."""
    if results_dir is None:
        results_dir = os.environ.get("REPRO_RESULTS_DIR", "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text)
        if not text.endswith("\n"):
            fh.write("\n")
    return path


def format_matrix(a, *, int_like: bool = True) -> str:
    """Small-matrix pretty printer for figure reproductions."""
    import numpy as np

    arr = np.asarray(a)
    if int_like and np.allclose(arr, np.round(arr)):
        cells = [[f"{int(round(v)):>4d}" for v in row] for row in arr]
    else:
        cells = [[f"{v:>8.3f}" for v in row] for row in arr]
    return "\n".join(" ".join(row) for row in cells)
