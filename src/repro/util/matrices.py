"""Test and benchmark matrix generators, including the paper's Figure 3 example."""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError

#: The 9 x 9 input matrix of Figure 3 (a diamond of small integers). Its
#: SAT appears in Figures 3, 8, 9, 10, and 11, so several benchmarks
#: reproduce intermediate values against this exact matrix.
FIGURE3_INPUT = np.array(
    [
        [0, 0, 0, 1, 1, 1, 0, 0, 0],
        [0, 0, 1, 1, 1, 1, 1, 0, 0],
        [0, 1, 1, 1, 2, 1, 1, 1, 0],
        [1, 1, 1, 2, 2, 2, 1, 1, 1],
        [1, 1, 2, 2, 3, 2, 2, 1, 1],
        [1, 1, 1, 2, 2, 2, 1, 1, 1],
        [0, 1, 1, 1, 2, 1, 1, 1, 0],
        [0, 0, 1, 1, 1, 1, 1, 0, 0],
        [0, 0, 0, 1, 1, 1, 0, 0, 0],
    ],
    dtype=np.float64,
)

#: The bottom-right corner of Figure 3's SAT is the grand total, 71.
FIGURE3_TOTAL = 71.0


def random_matrix(n: int, *, seed: int = 0, dtype=np.float64, m: int = None) -> np.ndarray:
    """Uniform random matrix in [0, 1) (or small ints for integer dtypes)."""
    rng = np.random.default_rng(seed)
    shape = (n, n if m is None else m)
    if np.issubdtype(np.dtype(dtype), np.integer):
        return rng.integers(0, 10, size=shape).astype(dtype)
    return rng.random(shape).astype(dtype)


def random_int_matrix(n: int, *, seed: int = 0, high: int = 10) -> np.ndarray:
    """Random small-integer matrix as float64 — exact under summation."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, high, size=(n, n)).astype(np.float64)


def gradient_matrix(n: int, dtype=np.float64) -> np.ndarray:
    """Deterministic ``a[i][j] = i + j`` ramp; handy for eyeballing scans."""
    idx = np.arange(n)
    return (idx[:, None] + idx[None, :]).astype(dtype)


def ones_matrix(n: int, dtype=np.float64) -> np.ndarray:
    """All-ones matrix: its SAT is ``(i+1)(j+1)``, a closed form tests use."""
    return np.ones((n, n), dtype=dtype)


def synthetic_image(n: int, *, seed: int = 7) -> np.ndarray:
    """A synthetic grayscale 'photograph' for the vision examples.

    Sum of smooth low-frequency gradients, a few bright rectangles, and
    pixel noise — enough structure for box filters and Haar features to
    produce interpretable responses.
    """
    rng = np.random.default_rng(seed)
    y, x = np.mgrid[0:n, 0:n]
    img = 0.4 * np.sin(2 * np.pi * x / n) * np.cos(2 * np.pi * y / n) + 0.5
    for _ in range(4):
        r0, c0 = rng.integers(0, max(1, n - n // 4), size=2)
        h, w = rng.integers(n // 8 + 1, n // 4 + 1, size=2)
        img[r0 : r0 + h, c0 : c0 + w] += 0.3
    img += rng.normal(0, 0.02, size=(n, n))
    return np.clip(img, 0.0, 1.0)


def pad_to_multiple(a: np.ndarray, w: int) -> np.ndarray:
    """Zero-pad a matrix on the bottom/right so both dimensions divide by ``w``.

    Zero padding preserves every SAT entry of the original region, so the
    result's top-left corner equals the unpadded SAT.
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ShapeError(f"pad_to_multiple expects a 2-D array, got ndim={a.ndim}")
    rows = (-a.shape[0]) % w
    cols = (-a.shape[1]) % w
    if rows == 0 and cols == 0:
        return a
    return np.pad(a, ((0, rows), (0, cols)), mode="constant")
