"""Input validation helpers shared across the package."""

from __future__ import annotations

import numpy as np

from ..errors import CorruptionDetected, ShapeError


def as_square_matrix(a, *, name: str = "matrix") -> np.ndarray:
    """Coerce to a 2-D square numpy array (copying only if needed)."""
    arr = np.asarray(a)
    if arr.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got ndim={arr.ndim}")
    if arr.shape[0] != arr.shape[1]:
        raise ShapeError(f"{name} must be square, got shape {arr.shape}")
    if arr.shape[0] == 0:
        raise ShapeError(f"{name} must be non-empty")
    return arr


def require_multiple(n: int, w: int, *, what: str = "matrix size") -> None:
    """Raise unless ``n`` is a positive multiple of ``w``."""
    if n <= 0 or n % w != 0:
        raise ShapeError(
            f"{what} must be a positive multiple of the machine width w={w}, got {n}"
        )


def require_finite(a, *, what: str = "array", error=CorruptionDetected) -> np.ndarray:
    """Raise ``error`` unless every element of ``a`` is finite.

    NaN/Inf are how poisoned words (fault injection, ECC-style corruption,
    a buggy provider) surface in float data; letting one through a
    streaming pipeline silently poisons every later band, so callers check
    at ingestion. Returns the validated array for chaining.
    """
    arr = np.asarray(a)
    if arr.size and not np.isfinite(arr).all():
        bad = np.argwhere(~np.isfinite(np.atleast_1d(arr)))
        count = len(bad)
        raise error(
            f"{what} contains {count} non-finite value{'s' if count != 1 else ''} "
            f"(first at index {tuple(bad[0])})"
        )
    return arr
