"""Deterministic retry pacing: injectable clocks and exponential backoff.

Resilient components (the executor's task retry, the out-of-core
:class:`~repro.sat.out_of_core.ResilientBandProvider`) must never block the
test suite on real ``time.sleep`` calls, and their pacing must be exactly
reproducible from a seed. Both follow from making the clock an injected
dependency: production code may pass :class:`SystemClock`, everything else
uses :class:`FakeClock`, which merely records how long it *would* have
slept.
"""

from __future__ import annotations

import time
from typing import List


class Clock:
    """Minimal clock interface: ``now()`` and ``sleep(seconds)``."""

    def now(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class SystemClock(Clock):
    """Wall-clock implementation for production use."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class FakeClock(Clock):
    """A clock that advances only when told to — no real sleeping.

    ``sleeps`` records every requested delay so tests can assert the exact
    deterministic backoff schedule.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self.sleeps: List[float] = []

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(float(seconds))
        self._now += float(seconds)

    def advance(self, seconds: float) -> None:
        self._now += float(seconds)


class ExponentialBackoff:
    """Deterministic exponential backoff: ``base * factor**attempt``, capped.

    No jitter on purpose — the resilience layer's contract is that a seed
    reproduces the entire fault-and-recovery timeline bit for bit.
    """

    def __init__(self, base: float = 0.01, factor: float = 2.0, cap: float = 1.0):
        if base < 0 or factor < 1.0 or cap < 0:
            raise ValueError(
                f"backoff needs base >= 0, factor >= 1, cap >= 0; "
                f"got base={base}, factor={factor}, cap={cap}"
            )
        self.base = base
        self.factor = factor
        self.cap = cap

    def delay(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (0-based)."""
        return min(self.cap, self.base * self.factor**attempt)

    def pause(self, clock: Clock, attempt: int) -> float:
        """Sleep the attempt's delay on ``clock``; returns the delay."""
        d = self.delay(attempt)
        clock.sleep(d)
        return d
